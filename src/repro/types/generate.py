"""Witness generation for the type algebra: values that inhabit a type.

The dual of :func:`repro.types.subtype.matches` — given a type, produce
concrete JSON values of it.  Used by the precision experiments (sampling
a type's inhabitants to compare two inferred schemas) and as the last leg
of the inference round-trip tests: every generated witness of an inferred
type must be accepted by the schema exported from it.

Generation is seeded and total for every inhabited type; ``Bot`` (and
``[Bot]``'s element position) raises :class:`UninhabitedTypeError`.
"""

from __future__ import annotations

import random
from typing import Any, Iterator

from repro.errors import ReproError
from repro.types.terms import (
    AnyType,
    ArrType,
    AtomType,
    BotType,
    RecType,
    Type,
    UnionType,
)

_WORDS = ("json", "schema", "type", "edbt", "tutorial", "value", "record")


class UninhabitedTypeError(ReproError):
    """Raised when asked to generate a value of an empty type."""


class TypeWitnessGenerator:
    """Seeded generator of values inhabiting algebra types."""

    def __init__(self, *, seed: int = 0, max_items: int = 3, optional_probability: float = 0.5):
        self.rng = random.Random(seed)
        self.max_items = max_items
        self.optional_probability = optional_probability

    def generate(self, t: Type) -> Any:
        """One value of type ``t``; raises for uninhabited types."""
        if isinstance(t, BotType):
            raise UninhabitedTypeError("Bot has no inhabitants")
        if isinstance(t, AnyType):
            return self.rng.choice([None, True, 7, "any"])
        if isinstance(t, AtomType):
            return self._atom(t)
        if isinstance(t, ArrType):
            if isinstance(t.item, BotType):
                return []  # [Bot]'s only inhabitant
            count = self.rng.randint(0, self.max_items)
            return [self.generate(t.item) for _ in range(count)]
        if isinstance(t, RecType):
            out = {}
            for f in t.fields:
                if f.required or self.rng.random() < self.optional_probability:
                    out[f.name] = self.generate(f.type)
            return out
        if isinstance(t, UnionType):
            member = self.rng.choice(t.members)
            return self.generate(member)
        raise ReproError(f"cannot generate from {t!r}")  # pragma: no cover

    def _atom(self, t: AtomType) -> Any:
        rng = self.rng
        if t.tag == "null":
            return None
        if t.tag == "bool":
            return rng.random() < 0.5
        if t.tag == "int":
            return rng.randint(-1000, 1000)
        if t.tag == "flt":
            # A non-integral float, so the witness matches Flt strictly.
            return rng.randint(-1000, 1000) + 0.5
        if t.tag == "num":
            return rng.choice([rng.randint(-1000, 1000), rng.random() * 100 + 0.25])
        return rng.choice(_WORDS) + str(rng.randint(0, 99))

    def stream(self, t: Type) -> Iterator[Any]:
        """An endless stream of witnesses."""
        while True:
            yield self.generate(t)


def generate_witness(t: Type, *, seed: int = 0) -> Any:
    """One-shot convenience."""
    return TypeWitnessGenerator(seed=seed).generate(t)


def generate_witnesses(t: Type, count: int, *, seed: int = 0) -> list[Any]:
    """``count`` seeded witnesses of ``t``."""
    generator = TypeWitnessGenerator(seed=seed)
    return [generator.generate(t) for _ in range(count)]
