"""Hash-consed type kernel: canonical unique instances for type terms.

Schema inference spends its time comparing, hashing and merging type
terms.  The seed did all of that structurally — deep recursive ``__eq__``
and ``__hash__`` on every dictionary probe of the reduce phase.  This
module removes the recursion from the hot path by *hash-consing*
(interning) terms:

- :meth:`InternTable.intern` returns **the** canonical instance for any
  structurally-equal term, built bottom-up so that every sub-term is
  canonical too.  Because children of canonical nodes are canonical, the
  intern probe for a node is a flat tuple of child identities — no deep
  traversal beyond the one O(size) walk of the input itself, and no
  allocation at all for structures the table has already seen.
- Canonical terms carry an intern mark that :mod:`repro.types.terms`
  uses for O(1) equality (equal iff identical) and cached hashing.
- :meth:`InternTable.canonical` fuses simplification and interning into
  a single probe-first walk, memoized per canonical node.
- :meth:`InternTable.merge_types` / :meth:`InternTable.reduce_types` are
  *native* implementations of the parametric merge on canonical terms,
  memoized on ``(id(left), id(right), equivalence)``.  Every recursive
  step re-enters the caches, so merging a large running type with a
  small document type only does work proportional to what changed — the
  property :class:`repro.inference.engine.TypeAccumulator` leans on to
  make the per-document reduce step O(1) once the running type
  stabilizes.  Parity with :func:`repro.types.merge.merge_all` is pinned
  by the chunking/ordering property tests.

The table holds strong references to every canonical node, so the
``id()``-based keys can never be recycled while the table lives.  A
process-wide default table (:func:`global_table`) backs the module-level
:func:`intern` / :func:`merge_interned` / :func:`reduce_interned`
conveniences.

**Memory model.**  A table grows with the number of *distinct*
structures it has seen — that is the point of hash-consing — and never
evicts on its own.  Long-lived processes that infer over many unrelated
collections should either pass a private ``InternTable`` per workload
(every engine entry point takes ``table=``) or call
:meth:`InternTable.clear` between workloads: clearing starts a new
*epoch* (intern marks are per-epoch tokens), so types retained from
before the clear stay valid and simply lose the O(1) equality fast path
against newer types.
"""

from __future__ import annotations

from typing import Hashable

from repro.types.merge import Equivalence, class_key
from repro.types.simplify import union
from repro.types.terms import (
    ANY,
    AnyType,
    ArrType,
    AtomType,
    BOOL,
    BOT,
    BotType,
    FLT,
    FieldType,
    INT,
    NULL,
    NUM,
    RecType,
    STR,
    Type,
    UnionType,
)


class InternTable:
    """A hash-consing table plus merge/reduce memo caches."""

    __slots__ = (
        "_nodes",
        "_canonical",
        "_merge_cache",
        "_reduce_cache",
        "_token",
        "hits",
        "misses",
    )

    def __init__(self) -> None:
        # Epoch token: canonical nodes are marked with this object, and
        # equality fast paths compare marks.  clear() replaces the token,
        # so nodes from a cleared epoch can never falsely alias nodes of
        # the current one.
        self._token: object = object()
        self._nodes: dict[Hashable, Type] = {}
        # id(canonical node) -> its simplified canonical form; fixpoints
        # map to themselves, making repeat canonical() probes O(1).
        self._canonical: dict[int, Type] = {}
        self._merge_cache: dict[tuple[int, int, Equivalence], Type] = {}
        self._reduce_cache: dict[tuple[int, Equivalence], Type] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # interning
    # ------------------------------------------------------------------

    def intern(self, t: Type) -> Type:
        """Return the canonical instance structurally equal to ``t``."""
        if t._interned is self._token:
            return t
        cls = t.__class__
        if cls is AtomType:
            return self._leaf(("atom", t.tag), t)  # type: ignore[union-attr]
        if cls is ArrType:
            return self._arr(self.intern(t.item))  # type: ignore[union-attr]
        if cls is FieldType:
            return self._field(t.name, self.intern(t.type), t.required)  # type: ignore[union-attr]
        if cls is RecType:
            return self._rec([self.intern(f) for f in t.fields])  # type: ignore[union-attr]
        if cls is UnionType:
            members = tuple(self.intern(m) for m in t.members)  # type: ignore[union-attr]
            key = ("union", tuple(map(id, members)))
            node = self._nodes.get(key)
            if node is not None:
                self.hits += 1
                return node
            return self._adopt(key, UnionType(members))
        if cls is BotType:
            return self._leaf(("bot",), t)
        if cls is AnyType:
            return self._leaf(("any",), t)
        raise TypeError(f"cannot intern {t!r}")

    # Probe-first constructors: no Type allocation when the structure is
    # already known.  All child arguments must be canonical already.

    def _leaf(self, key: Hashable, t: Type) -> Type:
        node = self._nodes.get(key)
        if node is not None:
            self.hits += 1
            return node
        return self._adopt(key, t)

    def _arr(self, item: Type) -> Type:
        key = ("arr", id(item))
        node = self._nodes.get(key)
        if node is not None:
            self.hits += 1
            return node
        return self._adopt(key, ArrType(item))

    def _field(self, name: str, ftype: Type, required: bool) -> FieldType:
        key = ("f", name, required, id(ftype))
        node = self._nodes.get(key)
        if node is not None:
            self.hits += 1
            return node  # type: ignore[return-value]
        return self._adopt(key, FieldType(name, ftype, required))  # type: ignore[return-value]

    def _rec(self, fields: list) -> Type:
        # The intern key must be order-canonical: RecType sorts its
        # fields in __post_init__, so sort here before probing.
        names = [f.name for f in fields]
        if any(names[i] > names[i + 1] for i in range(len(names) - 1)):
            fields = sorted(fields, key=lambda f: f.name)
        key = ("rec", tuple(map(id, fields)))
        node = self._nodes.get(key)
        if node is not None:
            self.hits += 1
            return node
        return self._adopt(key, RecType(tuple(fields)))

    def _adopt(self, key: Hashable, candidate: Type) -> Type:
        self.misses += 1
        # setdefault keeps a concurrent racer from installing a second
        # canonical node for the same structure; mark only the winner.
        node = self._nodes.setdefault(key, candidate)
        if node is candidate:
            object.__setattr__(node, "_interned", self._token)
        return node

    # ------------------------------------------------------------------
    # public probe-first constructors (the fused map phase)
    # ------------------------------------------------------------------
    #
    # These build canonical nodes directly — no raw tree, no re-intern
    # walk.  Preconditions (checked nowhere, for speed): every child
    # passed in must be canonical in THIS table's current epoch and in
    # simplify-normal form.  The fused encoder of repro.types.build and
    # the streaming typer uphold this by constructing bottom-up.

    def atom(self, tag: str) -> Type:
        """The canonical atom for ``tag`` (allocates only on first use)."""
        key = ("atom", tag)
        node = self._nodes.get(key)
        if node is not None:
            self.hits += 1
            return node
        return self._adopt(key, AtomType(tag))

    def arr_of(self, item: Type) -> Type:
        """Canonical ``[item]`` for a canonical, normal ``item``."""
        out = self._arr(item)
        if not out._normal:
            object.__setattr__(out, "_normal", True)
        return out

    def field_of(self, name: str, ftype: Type, required: bool = True) -> FieldType:
        """Canonical field for a canonical, normal ``ftype``."""
        out = self._field(name, ftype, required)
        if not out._normal:
            object.__setattr__(out, "_normal", True)
        return out

    def rec_of(self, fields: list) -> Type:
        """Canonical record over canonical, normal fields.

        Sorts by name when needed and rejects duplicate field names with
        the same ``ValueError`` the raw :class:`RecType` constructor
        raises — the fused and seed encoders fail identically.
        """
        out = self._rec(fields)
        if not out._normal:
            object.__setattr__(out, "_normal", True)
        return out

    def union_of(self, members) -> Type:
        """Canonical union of canonical, normal members.

        Runs the full :func:`repro.types.simplify.union` canonicalization
        (flatten, drop Bot, dedupe, absorb, sort), then probes by member
        identity so repeated shapes allocate nothing.
        """
        u = union(members)
        if u.__class__ is UnionType:
            key = ("union", tuple(map(id, u.members)))
            node = self._nodes.get(key)
            if node is not None:
                self.hits += 1
                if not node._normal:
                    object.__setattr__(node, "_normal", True)
                return node
            return self._adopt(key, u)
        # Bot, Any, or a single member that is already canonical.
        return self.intern(u)

    # ------------------------------------------------------------------
    # canonicalization (simplify ∘ intern in one pass)
    # ------------------------------------------------------------------

    def canonical(self, t: Type) -> Type:
        """The interned simplified form of ``t`` (one probe-first walk).

        Equivalent to ``intern(simplify(t))``; canonical outputs are
        recorded as their own fixpoints, so re-canonicalizing a node the
        table produced is a dictionary hit.  Terms carrying the
        normal-form mark (see :mod:`repro.types.simplify`) skip the
        simplification walk entirely: they only need interning, and when
        already interned here they are their own fixpoint.
        """
        if t._interned is self._token:
            out = self._canonical.get(id(t))
            if out is not None:
                return out
            if t._normal:
                self._canonical[id(t)] = t
                return t
        elif t._normal:
            out = self.intern(t)
            object.__setattr__(out, "_normal", True)
            self._canonical[id(out)] = out
            return out
        out = self._canonicalize(t)
        object.__setattr__(out, "_normal", True)
        self._canonical[id(out)] = out
        if t._interned is self._token:
            self._canonical[id(t)] = out
        return out

    def _canonicalize(self, t: Type) -> Type:
        cls = t.__class__
        if cls is AtomType:
            return self._leaf(("atom", t.tag), t)  # type: ignore[union-attr]
        if cls is ArrType:
            return self._arr(self.canonical(t.item))  # type: ignore[union-attr]
        if cls is RecType:
            return self._rec(
                [
                    self._field(f.name, self.canonical(f.type), f.required)
                    for f in t.fields  # type: ignore[union-attr]
                ]
            )
        if cls is FieldType:
            return self._field(t.name, self.canonical(t.type), t.required)  # type: ignore[union-attr]
        if cls is UnionType:
            # union() flattens, dedupes, absorbs and sorts — the same
            # canonicalization simplify applies, over canonical members.
            return self.intern(union(self.canonical(m) for m in t.members))  # type: ignore[union-attr]
        if cls is BotType:
            return self._leaf(("bot",), t)
        if cls is AnyType:
            return self._leaf(("any",), t)
        raise TypeError(f"cannot canonicalize {t!r}")

    # ------------------------------------------------------------------
    # memoized native parametric merge
    # ------------------------------------------------------------------

    def merge_types(self, left: Type, right: Type, equivalence: Equivalence) -> Type:
        """Memoized ``merge_all((left, right), equivalence)``, interned."""
        left = self.canonical(left)
        right = self.canonical(right)
        if left is right:
            # merge(t, t) == reduce_type(t), the idempotence law.
            return self.reduce_types(left, equivalence)
        key = (id(left), id(right), equivalence)
        out = self._merge_cache.get(key)
        if out is None:
            members = self._split(left)
            members.extend(self._split(right))
            out = self._merge_members(members, equivalence)
            self._merge_cache[key] = out
            # Merge is commutative; prime the mirrored key too.
            self._merge_cache[(id(right), id(left), equivalence)] = out
        return out

    def reduce_types(self, t: Type, equivalence: Equivalence) -> Type:
        """Memoized ``reduce_type(t, equivalence)``, interned."""
        t = self.canonical(t)
        key = (id(t), equivalence)
        out = self._reduce_cache.get(key)
        if out is None:
            if t.__class__ is UnionType:
                out = self._merge_members(list(t.members), equivalence)
            else:
                out = self._reduce_member(t, equivalence)
            self._reduce_cache[key] = out
            # Reduction is idempotent: the output is its own normal form.
            object.__setattr__(out, "_normal", True)
            self._reduce_cache[(id(out), equivalence)] = out
        return out

    @staticmethod
    def _split(t: Type) -> list[Type]:
        return list(t.members) if t.__class__ is UnionType else [t]

    def _merge_members(self, members: list[Type], equivalence: Equivalence) -> Type:
        """Partition canonical union members into classes and fuse each.

        Mirrors merge_all: singleton classes are still reduced (that is
        what makes reduction a normal form), multi-member classes fold
        through :meth:`_fuse2` — associativity makes the fold identical
        to the batch fusion.
        """
        classes: dict[Hashable, Type] = {}
        order: list[Hashable] = []
        for member in members:
            key = class_key(member, equivalence)
            rep = classes.get(key)
            if rep is None:
                classes[key] = self.reduce_types(member, equivalence)
                order.append(key)
            else:
                classes[key] = self._fuse2(rep, member, equivalence)
        out = self.intern(union(classes[key] for key in order))
        # Everything in `classes` is reduced, so the union of the
        # representatives is its own normal form: record the fixpoints so
        # later canonical()/reduce_types() probes are O(1).
        object.__setattr__(out, "_normal", True)
        self._canonical[id(out)] = out
        self._reduce_cache[(id(out), equivalence)] = out
        return out

    def _reduce_member(self, m: Type, equivalence: Equivalence) -> Type:
        """Reduce one canonical non-union member.

        Matches merge._fuse_class on a singleton class: containers are
        rebuilt with reduced children, leaves pass through.  Identity is
        preserved when nothing changes, so already-reduced terms cost a
        walk of cache hits and no allocation.
        """
        cls = m.__class__
        if cls is ArrType:
            item = self.reduce_types(m.item, equivalence)  # type: ignore[union-attr]
            return m if item is m.item else self._arr(item)  # type: ignore[union-attr]
        if cls is RecType:
            changed = False
            fields = []
            for f in m.fields:  # type: ignore[union-attr]
                ftype = self.reduce_types(f.type, equivalence)
                if ftype is f.type:
                    fields.append(f)
                else:
                    changed = True
                    fields.append(self._field(f.name, ftype, f.required))
            return self._rec(fields) if changed else m
        return m

    def _fuse2(self, a: Type, b: Type, equivalence: Equivalence) -> Type:
        """Fuse one member ``b`` into the reduced representative ``a``.

        Precondition: ``a`` and ``b`` are canonical and in the same
        equivalence class; ``a`` is reduced.  Matches merge._fuse_class
        on ``[a, b]`` field by field; when ``b`` adds nothing new the
        representative is returned unchanged, making the stable-state
        merge a pure probe loop.
        """
        if a is b:
            return self.reduce_types(a, equivalence)
        cls = a.__class__
        if cls is AtomType:
            # Same class with different tags only happens for number
            # atoms under KIND — their join is num.
            return a if a.tag == b.tag else self.intern(NUM)  # type: ignore[union-attr]
        if cls is ArrType:
            item = self.merge_types(a.item, b.item, equivalence)  # type: ignore[union-attr]
            return a if item is a.item else self._arr(item)  # type: ignore[union-attr]
        if cls is RecType:
            b_fields = b.field_map()  # type: ignore[union-attr]
            changed = False
            fused = []
            for f in a.fields:  # type: ignore[union-attr]
                g = b_fields.get(f.name)
                if g is None:
                    # Absent from b: the field becomes optional, its type
                    # reduced (a is reduced already, so this is a hit).
                    ftype = self.reduce_types(f.type, equivalence)
                    if ftype is f.type and not f.required:
                        fused.append(f)
                    else:
                        changed = True
                        fused.append(self._field(f.name, ftype, False))
                else:
                    ftype = self.merge_types(f.type, g.type, equivalence)
                    required = f.required and g.required
                    if ftype is f.type and required == f.required:
                        fused.append(f)
                    else:
                        changed = True
                        fused.append(self._field(f.name, ftype, required))
            a_labels = a.labels()  # type: ignore[union-attr]
            for g in b.fields:  # type: ignore[union-attr]
                if g.name not in a_labels:
                    changed = True
                    fused.append(
                        self._field(
                            g.name, self.reduce_types(g.type, equivalence), False
                        )
                    )
            return self._rec(fused) if changed else a
        # Bot/Any classes cannot contain two distinct canonical members.
        return a

    # ------------------------------------------------------------------
    # introspection / maintenance
    # ------------------------------------------------------------------

    def epoch(self) -> object:
        """The current epoch token.

        Callers that key external memo caches on ``id()`` of canonical
        nodes (e.g. the memoized subtype checker) compare this token to
        detect a :meth:`clear` and invalidate, since cleared nodes may be
        garbage-collected and their ids recycled.
        """
        return self._token

    def __len__(self) -> int:
        return len(self._nodes)

    def stats(self) -> dict[str, int]:
        return {
            "nodes": len(self._nodes),
            "hits": self.hits,
            "misses": self.misses,
            "merge_entries": len(self._merge_cache),
            "reduce_entries": len(self._reduce_cache),
        }

    def clear(self) -> None:
        """Drop every canonical node and cache, starting a new epoch.

        Nodes interned before the clear remain valid terms: they keep
        the *old* epoch token, so equality against anything interned
        afterwards falls back to the structural compare instead of the
        identity fast path.  Long-lived processes can therefore call
        ``clear()`` between unrelated inference runs to reclaim the
        table's memory without corrupting types they still hold.
        """
        self._token = object()
        self._nodes.clear()
        self._canonical.clear()
        self._merge_cache.clear()
        self._reduce_cache.clear()
        self.hits = 0
        self.misses = 0


_GLOBAL = InternTable()


def global_table() -> InternTable:
    """The process-wide intern table used by the inference engine."""
    return _GLOBAL


class EpochMemo:
    """An external memo cache keyed on ``id()`` of canonical nodes.

    The pattern the memoized subtype checker established, extracted for
    every subsystem that caches per-node results outside the table (the
    subtype verdict memo, the translation resolver, the compiled
    Avro/Parquet schema caches): :meth:`map_for` hands out the persistent
    dict when ``table`` is the process-wide global table, clearing it
    whenever the table starts a new epoch — cleared nodes may be
    garbage-collected and their ids recycled, so entries from an older
    epoch must never be consulted.  Private tables get a fresh throwaway
    dict per call instead; correctness never depends on the cache.
    """

    __slots__ = ("_token", "_data")

    def __init__(self) -> None:
        self._token: object = None
        self._data: dict = {}

    def map_for(self, table: InternTable) -> dict:
        if table is not _GLOBAL:
            return {}
        token = table.epoch()
        if token is not self._token:
            self._data.clear()
            self._token = token
        return self._data


def intern(t: Type) -> Type:
    """Intern ``t`` in the global table."""
    return _GLOBAL.intern(t)


def merge_interned(left: Type, right: Type, equivalence: Equivalence) -> Type:
    """Globally memoized pairwise parametric merge."""
    return _GLOBAL.merge_types(left, right, equivalence)


def reduce_interned(t: Type, equivalence: Equivalence) -> Type:
    """Globally memoized parametric reduction."""
    return _GLOBAL.reduce_types(t, equivalence)


def intern_stats() -> dict[str, int]:
    """Counters of the global table (nodes, hit/miss, cache sizes)."""
    return _GLOBAL.stats()


# Pre-seed the global table with the module-level leaf singletons of
# terms.py, so `intern(NULL) is NULL` etc. — code that used the named
# constants keeps getting the exact same objects back.
for _leaf in (BOT, ANY, NULL, BOOL, INT, FLT, NUM, STR):
    intern(_leaf)
del _leaf
