"""Parametric type merging — the *reduce* phase of schema inference.

Following Baazizi et al. (EDBT '17, VLDB J '19), merging is parameterised
by an **equivalence** that decides which union members get *fused* together
rather than kept side by side:

- :attr:`Equivalence.KIND` (K): types with the same top-level kind fuse.
  All records collapse into one record (field-wise, with optionality
  marks), all arrays into one array, ``Int``/``Flt`` into ``Num``.
  Most compact, least precise.
- :attr:`Equivalence.LABEL` (L): records fuse only when they have the
  **same label set**, so structurally different variants stay separate
  union members and field correlations survive.  Atoms fuse only when
  identical.  More precise, larger.

``merge_all`` folds any number of types in one partition pass; the result
is identical to any sequence of binary :func:`merge` calls (associativity
and commutativity are enforced by the property tests).
"""

from __future__ import annotations

import enum
from typing import Hashable, Iterable

from repro.types.simplify import simplify, union
from repro.types.terms import (
    ArrType,
    AtomType,
    FieldType,
    NUM,
    RecType,
    Type,
    UnionType,
)


class Equivalence(enum.Enum):
    """The fusion parameter of parametric inference."""

    KIND = "kind"
    LABEL = "label"


def merge(left: Type, right: Type, equivalence: Equivalence = Equivalence.KIND) -> Type:
    """Merge two types under the given equivalence."""
    return merge_all((left, right), equivalence)


def reduce_type(t: Type, equivalence: Equivalence = Equivalence.KIND) -> Type:
    """Normalize ``t`` under the equivalence (the paper's *reduction*).

    Fuses equivalent union members at every depth.  ``reduce_type`` is
    idempotent, and ``merge(t, t, eq) == reduce_type(t, eq)``.
    """
    return merge_all((t,), equivalence)


def merge_all(types: Iterable[Type], equivalence: Equivalence = Equivalence.KIND) -> Type:
    """Merge any number of types under the given equivalence.

    The inputs are simplified, their union members partitioned into
    equivalence classes, each class fused, and the fused representatives
    unioned back together.
    """
    members: list[Type] = []
    for t in types:
        t = simplify(t)
        if isinstance(t, UnionType):
            members.extend(t.members)
        else:
            members.append(t)

    classes: dict[Hashable, list[Type]] = {}
    order: list[Hashable] = []
    for member in members:
        key = class_key(member, equivalence)
        if key not in classes:
            classes[key] = []
            order.append(key)
        classes[key].append(member)

    fused = [_fuse_class(classes[key], equivalence) for key in order]
    return union(fused)


def class_key(t: Type, equivalence: Equivalence) -> Hashable:
    """Key under which union members are grouped for fusion.

    Public because the incremental engine
    (:class:`repro.inference.engine.TypeAccumulator`) maintains the same
    class partition online — both sides must bucket identically for the
    streaming result to stay bit-identical to ``merge_all``.
    """
    if isinstance(t, RecType):
        if equivalence is Equivalence.KIND:
            return ("rec",)
        return ("rec", t.labels())
    if isinstance(t, ArrType):
        return ("arr",)
    if isinstance(t, AtomType):
        if equivalence is Equivalence.KIND:
            return ("atom", t.kind)
        return ("atom", t.tag)
    # Bot/Any never appear here (union() removes/absorbs them), but give
    # them stable keys for safety.
    return (type(t).__name__,)


def _fuse_class(members: list[Type], equivalence: Equivalence) -> Type:
    # Containers are rebuilt even for singleton classes so that nested
    # unions get reduced too — this is what makes reduce_type a normal form
    # (merge(t, t) == reduce_type(t)).
    first = members[0]
    if isinstance(first, AtomType):
        return _fuse_atoms(members)
    if isinstance(first, ArrType):
        item = merge_all((m.item for m in members), equivalence)  # type: ignore[attr-defined]
        return ArrType(item)
    if isinstance(first, RecType):
        return _fuse_records(members, equivalence)  # type: ignore[arg-type]
    # Bot/Any classes cannot contain two distinct members.
    return first


def _fuse_atoms(members: list[Type]) -> Type:
    tags = {m.tag for m in members if isinstance(m, AtomType)}
    if len(tags) == 1:
        return members[0]
    # Same kind but different tags can only be number atoms.
    return NUM


def _fuse_records(records: list[RecType], equivalence: Equivalence) -> RecType:
    """Field-wise fusion: union of field sets, AND of required flags."""
    present_in: dict[str, list[FieldType]] = {}
    order: list[str] = []
    for record in records:
        for f in record.fields:
            if f.name not in present_in:
                present_in[f.name] = []
                order.append(f.name)
            present_in[f.name].append(f)

    fused_fields = []
    total = len(records)
    for name in order:
        occurrences = present_in[name]
        field_type = merge_all((f.type for f in occurrences), equivalence)
        required = len(occurrences) == total and all(f.required for f in occurrences)
        fused_fields.append(FieldType(name, field_type, required=required))
    return RecType(tuple(fused_fields))
