"""Mapping JSON values to their exact types (the *map* phase of inference).

``type_of`` computes the most precise type of a single value in this
algebra: records list every present field as required; arrays abstract
their elements by the union of the element types (the abstraction step the
EDBT '17 paper applies at arrays, since arrays are homogeneous-ish in
practice and element positions are not tracked).

``type_of_interned`` / :class:`TypeEncoder` are the *fused* map phase:
they construct canonical interned terms directly against an
:class:`~repro.types.intern.InternTable` — probe-first, bottom-up, with
an explicit stack instead of recursion — so typing a document the table
has seen the shape of before allocates nothing and never builds the raw
tree that ``intern(type_of(value))`` would throw away.  The composition
law ``type_of_interned(v) is intern(type_of(v))`` is pinned by the
differential property tests in ``tests/test_build_fused_differential.py``.

:class:`EventTypeEncoder` extends the fused map phase to *text*: it
consumes SAX-style parse events (:meth:`EventTypeEncoder.feed_event`) or
raw JSON text (:meth:`EventTypeEncoder.encode_text`) and resolves
every closing container through the same record/array shape caches —
no ``JSONValue`` DOM, no per-document frame objects, just bytes to a
canonical interned type.  ``encode_text`` is a **regex-vectorized
structural scan**: compiled phase-specific master patterns (built from
the lexer's shared token fragments) consume the inter-token whitespace
and the next token — or a whole ``"key": scalar-value ,`` member /
array element — per C-speed ``match`` call, so the happy path does no
per-character Python dispatch at all.  ``encode_text`` raises exactly
the errors the DOM parser raises (same class, message and offset), so
the streaming and parsing paths fail identically.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional

import re

from repro.errors import InferenceError
from repro.jsonvalue.events import JsonEvent, JsonEventType
from repro.jsonvalue.lexer import (
    FULL_STRING_BODY_PATTERN_BYTES,
    INT_PATTERN,
    INT_PATTERN_BYTES,
    NUMBER_BOUNDARY_BYTES,
    NUMBER_BOUNDARY_CHARS,
    NUMBER_TAIL_PATTERN_BYTES,
    STRING_BODY_PATTERN,
    STRING_BODY_PATTERN_BYTES,
    UTF8_VALIDATION_PATTERN,
    WHITESPACE_PATTERN,
    WHITESPACE_PATTERN_BYTES,
    Token,
    TokenType,
    _Scanner,
)
from repro.jsonvalue.model import JsonKind, is_integer_value, kind_of
from repro.jsonvalue.parser import JsonParseError
from repro.types.intern import InternTable, global_table
from repro.types.simplify import union
from repro.types.terms import (
    ArrType,
    BOOL,
    BOT,
    FLT,
    FieldType,
    INT,
    NULL,
    RecType,
    STR,
    Type,
)


def type_of(value: Any) -> Type:
    """Return the exact type of ``value``.

    - scalars map to their atom (ints to ``Int``, floats to ``Flt``);
    - objects map to a record with every field required;
    - arrays map to ``[T1 + ... + Tn]`` over the element types, with the
      empty array mapping to ``[Bot]``.
    """
    kind = kind_of(value)
    if kind is JsonKind.NULL:
        return NULL
    if kind is JsonKind.BOOLEAN:
        return BOOL
    if kind is JsonKind.NUMBER:
        return INT if is_integer_value(value) else FLT
    if kind is JsonKind.STRING:
        return STR
    if kind is JsonKind.ARRAY:
        if not value:
            return ArrType(BOT)
        return ArrType(union(type_of(v) for v in value))
    # Object.
    return RecType(
        tuple(FieldType(name, type_of(v), required=True) for name, v in value.items())
    )


class TypeEncoder:
    """Fused map phase: one JSON value → its canonical interned type.

    Equivalent to ``table.intern(type_of(value))`` but:

    - **recursion-free** — containers are traversed with an explicit
      frame stack, so arbitrarily deep documents encode without touching
      Python's recursion limit (the seed ``type_of`` cannot);
    - **probe-first** — every node is looked up in the intern table by
      child identity before anything is allocated, so repeated structure
      costs dictionary probes only;
    - **shape-cached** — every closing container is resolved through a
      per-encoder cache keyed on its child signature (field names and
      canonical child identities for records, member identities for
      arrays), so the repeated record shapes that dominate real
      collections skip even the per-field intern probes and the
      field-sort of record construction.

    The shape caches are the *per-batch* caches: private to the encoder
    instance and rebound automatically when the backing table starts a
    new epoch (:meth:`InternTable.clear`), so stale canonical nodes can
    never leak across a clear.
    """

    __slots__ = (
        "table",
        "_epoch",
        "_scalars",
        "_null",
        "_bool",
        "_int",
        "_flt",
        "_str",
        "_empty_arr",
        "_rec_cache",
        "_arr_cache",
    )

    def __init__(self, table: Optional[InternTable] = None) -> None:
        self.table = table if table is not None else global_table()
        self._rebind()

    def _rebind(self) -> None:
        """(Re)acquire canonical leaves for the table's current epoch."""
        table = self.table
        self._epoch = table.epoch()
        self._null = table.intern(NULL)
        self._bool = table.intern(BOOL)
        self._int = table.intern(INT)
        self._flt = table.intern(FLT)
        self._str = table.intern(STR)
        self._empty_arr = table.arr_of(table.intern(BOT))
        # Exact-type scalar dispatch.  type() distinguishes bool from int
        # (bool cannot be subclassed), so this is the whole kind_of chain
        # in one dictionary probe; scalar *subclasses* fall through to
        # _scalar_slow.
        self._scalars = {
            type(None): self._null,
            bool: self._bool,
            int: self._int,
            float: self._flt,
            str: self._str,
        }
        self._rec_cache: dict = {}
        self._arr_cache: dict = {}

    # ------------------------------------------------------------------

    def _scalar_slow(self, value: Any) -> Optional[Type]:
        """Classify values whose exact type missed the dispatch table.

        Returns the canonical atom for scalar subclasses, ``None`` for
        dict/list (subclasses included), and raises the same ``TypeError``
        as :func:`repro.jsonvalue.model.kind_of` for non-JSON values.
        """
        if isinstance(value, (dict, list)):
            return None
        kind = kind_of(value)
        if kind is JsonKind.NULL:
            return self._null
        if kind is JsonKind.BOOLEAN:
            return self._bool
        if kind is JsonKind.NUMBER:
            return self._int if is_integer_value(value) else self._flt
        return self._str

    def _open(self, value: Any):
        """Start encoding a container: a frame, or the finished type.

        Frames are plain lists ``[is_object, iterator, key parts,
        child types, pending name]`` — anything that is *not* a list is
        an already-canonical result (empty arrays resolve immediately).
        Key parts accumulate the container's shape signature — alternating
        field name / canonical child id for records, child ids for arrays
        — which the close step probes against the shape caches before
        constructing anything.
        """
        if isinstance(value, dict):
            return [True, iter(value.items()), [], [], None]
        if not value:
            return self._empty_arr
        return [False, iter(value), [], [], None]

    def encode(self, value: Any) -> Type:
        """The canonical interned type of ``value``.

        Identical (by object identity) to ``table.intern(type_of(value))``.
        """
        table = self.table
        if table.epoch() is not self._epoch:
            self._rebind()
        scalars = self._scalars
        atom = scalars.get(type(value))
        if atom is None:
            atom = self._scalar_slow(value)
        if atom is not None:
            return atom
        opened = self._open(value)
        if opened.__class__ is not list:
            return opened
        stack = [opened]
        result: Optional[Type] = None
        while stack:
            frame = stack[-1]
            keyparts = frame[2]
            ctypes = frame[3]
            pushed = False
            if frame[0]:
                for name, v in frame[1]:
                    atom = scalars.get(type(v))
                    if atom is None:
                        atom = self._scalar_slow(v)
                        if atom is None:
                            child = self._open(v)
                            if child.__class__ is list:
                                frame[4] = name
                                stack.append(child)
                                pushed = True
                                break
                            keyparts.append(name)
                            keyparts.append(id(child))
                            ctypes.append(child)
                            continue
                    keyparts.append(name)
                    keyparts.append(id(atom))
                    ctypes.append(atom)
                if pushed:
                    continue
                key = tuple(keyparts)
                done = self._rec_cache.get(key)
                if done is None:
                    field_of = table.field_of
                    done = table.rec_of(
                        [field_of(n, t) for n, t in zip(keyparts[0::2], ctypes)]
                    )
                    self._rec_cache[key] = done
            else:
                for v in frame[1]:
                    atom = scalars.get(type(v))
                    if atom is None:
                        atom = self._scalar_slow(v)
                        if atom is None:
                            child = self._open(v)
                            if child.__class__ is list:
                                stack.append(child)
                                pushed = True
                                break
                            keyparts.append(id(child))
                            ctypes.append(child)
                            continue
                    keyparts.append(id(atom))
                    ctypes.append(atom)
                if pushed:
                    continue
                key = tuple(keyparts)
                done = self._arr_cache.get(key)
                if done is None:
                    done = table.arr_of(table.union_of(ctypes))
                    self._arr_cache[key] = done
            stack.pop()
            if stack:
                parent = stack[-1]
                if parent[0]:
                    parent[2].append(parent[4])
                    parent[2].append(id(done))
                    parent[3].append(done)
                    parent[4] = None
                else:
                    parent[2].append(id(done))
                    parent[3].append(done)
            else:
                result = done
        assert result is not None
        return result


# Parser phases of the fused text machine (mirrors the DOM parser and
# the event parser: about to read a value / an object key / the
# punctuation following a completed value).  The OR_CLOSE variants are
# the "just opened a container" states where the closing bracket is
# still legal.
_PHASE_VALUE = 0
_PHASE_KEY = 1
_PHASE_AFTER = 2
_PHASE_KEY_OR_CLOSE = 3
_PHASE_VALUE_OR_CLOSE = 4

# --------------------------------------------------------------------------
# The regex-vectorized structural scan.
#
# One compiled master pattern per parser phase, composed from the lexer's
# shared token fragments.  Each pattern folds the inter-token whitespace
# run and the next token into a *single* C-speed ``match`` call, so the
# per-token Python cost of ``encode_text`` is one regex call plus one
# integer dispatch on ``lastindex`` — no per-character work at all on the
# happy path.  Anything a pattern declines (escaped strings, malformed
# literals, EOF, garbage) drops to the real lexer at the same position,
# which either resolves the token or raises the exact parser error.
#
# Line/column bookkeeping is *lazy*: newlines are only counted (from a
# monotonically advancing anchor, so the total work stays linear) when a
# slow path or an error actually needs a position.
# --------------------------------------------------------------------------

_STRING_BODY = STRING_BODY_PATTERN
# INT ∪ FLOAT as one backtrack-free alternative: the (always
# participating, possibly empty) tail group is what makes the literal a
# float, so integers match in a single forward scan — no failed-float
# re-scan — and the kind falls out of the tail group's width.
_NUMBER_TAIL = r"(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?"

# The scalar alternatives, one capturing group each so ``lastindex``
# names the kind in a single attribute read (the opening quote stands
# in for the whole string — its content never matters to its type;
# true/false and null are separate groups for the same reason).
# Relative groups: +1 string, +2 number (containing +3 tail),
# +4 true/false, +5 null, +6 empty array, +7 empty object.
_SCALAR_GROUPS = (
    '(")' + _STRING_BODY + '"'
    + "|(" + INT_PATTERN + "(" + _NUMBER_TAIL + "))"
    + "|(true|false)|(null)"
    + r"|(\[" + WHITESPACE_PATTERN + r"\])"
    + r"|(\{" + WHITESPACE_PATTERN + r"\})"
)

# Expect-a-value contexts.  Group indices drive the dispatch:
#   1 string   2 number   3 number tail   4 true/false   5 null
#   6 empty array   7 empty object
#   8 "{"   9 "["   10 "]" (legal only just after "[")
_VALUE_SCAN = re.compile(
    WHITESPACE_PATTERN + "(?:"
    + _SCALAR_GROUPS
    + r"|(\{)|(\[)|(\])"
    ")"
)
# Expect-an-object-key contexts: the key string *and* its colon in one
# match (group 1 captures the key's content), or the closing brace
# (group 2, legal only just after "{").
_KEY_SCAN = re.compile(
    WHITESPACE_PATTERN
    + '(?:"(' + _STRING_BODY + ')"' + WHITESPACE_PATTERN + r":|(\}))"
)
# After-a-completed-value contexts: the only legal tokens are "," and the
# closing brackets.
_AFTER_SCAN = re.compile(WHITESPACE_PATTERN + r"([,\]}])")

# The member/element fused fast paths: a whole scalar object member
# (key, colon, value, and the following "," or "}") or a whole scalar
# array element (value plus "," or "]") in *one* match — and when the
# value is itself a container, the key and its opening bracket in one
# match.  These are the shapes that dominate real collections — flat
# records of scalars and arrays of scalars — and fusing them drops the
# Python loop from one iteration per token to one per member or
# element.  The (captureless) terminator doubles as the number-boundary
# guard: a maximal number match followed by anything but
# whitespace-then-terminator fails the whole pattern, so malformed
# literals ("01", "1.e5") can never sneak through — they fall back to
# the per-token machine and its exact errors.
#
# Member groups: 1 key content, 2 string, 3 number, 4 number tail,
# 5 true/false, 6 null, 7 empty array, 8 empty object,
# 9 "{" or "[" (the value opens a container).
_MEMBER_BODY = (
    '"(' + _STRING_BODY + ')"'
    + WHITESPACE_PATTERN + ":" + WHITESPACE_PATTERN
    + "(?:(?:" + _SCALAR_GROUPS + ")"
    + WHITESPACE_PATTERN + r"[,}]|([{\[]))"
)
_MEMBER_SCAN = re.compile(WHITESPACE_PATTERN + _MEMBER_BODY)
# Element groups: 1 string, 2 number, 3 number tail, 4 true/false,
# 5 null, 6 empty array, 7 empty object, 8 "{" or "[".
_ELEMENT_BODY = (
    "(?:(?:" + _SCALAR_GROUPS + ")"
    + WHITESPACE_PATTERN + r"[,\]]|([{\[]))"
)
_ELEMENT_SCAN = re.compile(WHITESPACE_PATTERN + _ELEMENT_BODY)
# Continuation variants: after a nested container closes, its sibling
# member/element (comma included) in one match — so closing a child
# flows straight back into the parent's fused loop without a trip
# through the phase machine.
_AFTER_MEMBER_SCAN = re.compile(
    WHITESPACE_PATTERN + "," + WHITESPACE_PATTERN + _MEMBER_BODY
)
_AFTER_ELEMENT_SCAN = re.compile(
    WHITESPACE_PATTERN + "," + WHITESPACE_PATTERN + _ELEMENT_BODY
)

_WS_RUN = re.compile(WHITESPACE_PATTERN)
_NUMBER_BOUNDARY = frozenset(NUMBER_BOUNDARY_CHARS)
_NUMBER_START = "-0123456789"

# --------------------------------------------------------------------------
# The bytes-native mirror of the structural scan.
#
# ``encode_bytes`` runs the same phase machine directly over a raw byte
# buffer (mmap, shared-memory view, bytes) with *no* per-line
# ``.decode("utf-8")``: every fragment — the string-body class included —
# mirrors its str twin by plain ASCII encoding, so in bytes mode string
# bodies admit any byte ``\x20``–``\xff`` except ``"`` and ``\`` and
# UTF-8 multibyte content is skipped *structurally* (multibyte sequences
# contain no bytes below ``\x80``, so byte-level and char-level string
# extents agree on valid UTF-8).  The only str objects the happy path
# creates are object *keys*, resolved through a bytes→str cache so each
# distinct key bytes decodes once per encoder.
#
# UTF-8 validity is checked lazily, once per document: a successful scan
# returns directly when a C-speed search finds no high byte (the common
# all-ASCII case), and otherwise runs one strict-validation match over
# the range — never a decode.  The group layout of every pattern matches
# its str twin exactly, so the fused loops emit the same small-int
# shape-signature codes and the two machines share one set of
# record/array shape caches.
#
# Anything the byte patterns decline — malformed tokens, malformed
# UTF-8, structural errors, EOF — *delegates*: the document's byte range
# is decoded (raising the same ``UnicodeDecodeError`` the text pipeline's
# up-front decode would, bytes and positions identical) and re-run
# through ``encode_text``, which raises the parser-exact error with
# *character* offsets.  Declines happen only on documents that cannot
# parse, so valid input never pays the decode.
# --------------------------------------------------------------------------

_BYTES_WS = WHITESPACE_PATTERN_BYTES
_BYTES_NUMBER_TAIL = NUMBER_TAIL_PATTERN_BYTES

# Scalar alternatives with the same relative groups as _SCALAR_GROUPS:
# +1 string, +2 number (containing +3 tail), +4 true/false, +5 null,
# +6 empty array, +7 empty object.
_BYTES_SCALAR_GROUPS = (
    b'(")' + STRING_BODY_PATTERN_BYTES + b'"'
    + b"|(" + INT_PATTERN_BYTES + b"(" + _BYTES_NUMBER_TAIL + b"))"
    + b"|(true|false)|(null)"
    + rb"|(\[" + _BYTES_WS + rb"\])"
    + rb"|(\{" + _BYTES_WS + rb"\})"
)
# The per-token value scan carries the *full* string pattern (escapes
# included): a match is a complete literal whose content never matters
# to its type, so escaped strings stay on the bytes path.
_BYTES_FULL_SCALAR_GROUPS = (
    b'(")' + FULL_STRING_BODY_PATTERN_BYTES + b'"'
    + b"|(" + INT_PATTERN_BYTES + b"(" + _BYTES_NUMBER_TAIL + b"))"
    + b"|(true|false)|(null)"
    + rb"|(\[" + _BYTES_WS + rb"\])"
    + rb"|(\{" + _BYTES_WS + rb"\})"
)
_BYTES_VALUE_SCAN = re.compile(
    _BYTES_WS + b"(?:"
    + _BYTES_FULL_SCALAR_GROUPS
    + rb"|(\{)|(\[)|(\])"
    b")"
)
# Key scan: full string pattern, so escaped keys resolve without the
# lexer (the decoded key comes from the bytes→str cache).
_BYTES_KEY_SCAN = re.compile(
    _BYTES_WS
    + b'(?:"(' + FULL_STRING_BODY_PATTERN_BYTES + b')"' + _BYTES_WS + rb":|(\}))"
)
_BYTES_AFTER_SCAN = re.compile(_BYTES_WS + rb"([,\]}])")
_BYTES_MEMBER_BODY = (
    b'"(' + STRING_BODY_PATTERN_BYTES + b')"'
    + _BYTES_WS + b":" + _BYTES_WS
    + b"(?:(?:" + _BYTES_SCALAR_GROUPS + b")"
    + _BYTES_WS + rb"[,}]|([{\[]))"
)
_BYTES_MEMBER_SCAN = re.compile(_BYTES_WS + _BYTES_MEMBER_BODY)
_BYTES_ELEMENT_BODY = (
    b"(?:(?:" + _BYTES_SCALAR_GROUPS + b")"
    + _BYTES_WS + rb"[,\]]|([{\[]))"
)
_BYTES_ELEMENT_SCAN = re.compile(_BYTES_WS + _BYTES_ELEMENT_BODY)
_BYTES_AFTER_MEMBER_SCAN = re.compile(
    _BYTES_WS + b"," + _BYTES_WS + _BYTES_MEMBER_BODY
)
_BYTES_AFTER_ELEMENT_SCAN = re.compile(
    _BYTES_WS + b"," + _BYTES_WS + _BYTES_ELEMENT_BODY
)
_BYTES_WS_RUN = re.compile(_BYTES_WS)
_BYTES_NUMBER_BOUNDARY = frozenset(NUMBER_BOUNDARY_BYTES)
# The lazy document-level UTF-8 check: one C-speed search for any high
# byte, and — only when one exists — one strict-validation match.
_BYTES_HIGH_BYTE = re.compile(rb"[\x80-\xff]")
_BYTES_UTF8_RUN = re.compile(UTF8_VALIDATION_PATTERN)
_COMMA_BYTE = 0x2C
_LBRACE_BYTE = 0x7B

# --------------------------------------------------------------------------
# The batched line-shape cache (``encode_lines``).
#
# Typing a corpus line is a function of its *shape* — structure bytes,
# key names, scalar kinds — never of its string contents or number
# values.  ``encode_lines`` exploits that at corpus granularity: a few
# whole-buffer C passes reduce every line to an unforgeable *skeleton*
# (value-string contents dropped, number literals folded to their kind,
# keys kept verbatim), and a skeleton→canonical-type dict then resolves
# repeated shapes with one dict probe per line — no scan, no decode, no
# per-member Python at all.  The passes:
#
#   1. ``b'\"":\"'.replace`` marks every ``"key":`` by fusing the closing
#      quote and colon into ``\x04`` (memchr speed).  Key strings now
#      have no closing quote, so the string-strip pass cannot touch
#      them — key *names* stay verbatim in the skeleton.
#   2. one group-free sub replaces every remaining (value) string
#      literal with ``\x03``.
#   3. ``bytes.translate`` folds digits 1-9 to ``0`` and a ``00+`` sub
#      collapses digit runs: every int literal becomes ``0``, floats
#      become ``0.0``/``0e0``-class spellings — number *kind* survives,
#      value does not.
#
# Soundness rests on bypasses, each a corpus-level C search that almost
# never fires: control bytes (could forge the ``\x03``/``\x04``
# markers), backslashes (escape processing makes quote pairing
# content-dependent), ``"<ws>:`` spaced keys (step 1 only fuses compact
# ``":``), digit-bearing keys (step 3 would fold them), and pre-fold
# leading-zero shapes (``01`` would fold into ``12``'s skeleton).  A
# line that trips any bypass is typed by the machine and never cached.
# Lines that cache hit are UTF-8-validated individually (value contents
# differ per line) before the cached node is returned.
#
# On a cache miss the line's skeleton is additionally *collapsed* —
# runs of identical array elements fold to one (``[0,0,0]`` and ``[0]``
# have the same array type) — and both keys alias the computed type, so
# shape-heavy corpora converge while exact repeats stay one probe.
# --------------------------------------------------------------------------

_SKEL_CTRL = re.compile(rb"[\x00-\x08\x0b\x0c\x0e-\x1f]")
_SKEL_STRIP_SIMPLE = re.compile(b'"' + STRING_BODY_PATTERN_BYTES + b'"')
_SKEL_STRIP_FULL = re.compile(b'"' + FULL_STRING_BODY_PATTERN_BYTES + b'"')
_SKEL_WSKEY = re.compile(rb'"[ \t]+:')
_SKEL_KEYDIG = re.compile(rb'"[^\x04"0-9]*[0-9]')
_SKEL_LEADING_ZERO = re.compile(rb"(?<![0-9.eE+])(?<![eE]-)0[0-9]")
# Digit-bearing keys (``p99``, ``utf8``, ``h2o``…) used to trip the
# keydig guard wholesale and push their lines to the scan machine.
# Instead, a protect pass shifts digits *inside key regions* (an
# opening quote through its ``\x04`` key marker, never spanning a line
# break) up into \x10-\x19 — length-preserving and injective, so
# distinct keys keep distinct skeletons, and the value-digit fold no
# longer touches them.  Raw \x10-\x19 bytes in input cannot collide:
# they are control bytes, and control-bearing lines never touch the
# cache.  Keys the protect pattern cannot cover (an escaped quote
# before the digit keeps the ``"…\x04`` shape from matching) still
# match the keydig search afterwards and fall back per line as before.
_SKEL_KEYDIG_PROTECT = re.compile(rb'"[^"\x04\r\n]*[0-9][^"\x04\r\n]*\x04')
_SKEL_DIGIT_SHIFT = bytes.maketrans(b"0123456789", bytes(range(0x10, 0x1A)))


def _skel_shift_key_digits(match) -> bytes:
    return match.group(0).translate(_SKEL_DIGIT_SHIFT)
_SKEL_FOLD = bytes.maketrans(b"123456789", b"000000000")
_SKEL_RUNS = re.compile(rb"00+")
_SKEL_BREAK = re.compile(rb"\r\n|\r|\n")
# Collapse of repeated identical array elements (scalar skeletons, then
# innermost containers — iterated to a fixpoint on the miss path only).
# Both boundary assertions are load-bearing: a backreference happily
# matches a *prefix* of the next element (``0,0`` inside ``0,0.0``) and
# the engine can equally start a match mid-token (``0,0`` inside
# ``0.0,0``) — either would alias int/float-mixed and pure-float array
# skeletons — so a run collapses only when nothing token-extending
# precedes it or follows it.
_SKEL_RUN_START = rb"(?<![0-9.a-zA-Z+\-])"
_SKEL_RUN_END = rb"(?![0-9.a-zA-Z+\-])"
_SKEL_SCALAR_RUN = re.compile(
    _SKEL_RUN_START
    + rb"(0(?:\.0)?(?:[eE][+-]?0)?|\x03|true|false|null)(?:,\1)+"
    + _SKEL_RUN_END
)
_SKEL_CONTAINER_RUN = re.compile(
    _SKEL_RUN_START + rb"(\{[^{}]*\}|\[[^\[\]]*\])(?:,\1)+" + _SKEL_RUN_END
)

# Adaptive state: stop skeletonizing when the corpus doesn't repeat.
_SKEL_MIN_ATTEMPTS = 2048
_SKEL_CACHE_LIMIT = 1 << 16


def _collapse_skeleton(skeleton: bytes) -> bytes:
    """Fold runs of identical array elements to one element."""
    skeleton = _SKEL_SCALAR_RUN.sub(rb"\1", skeleton)
    previous = None
    while previous != skeleton:
        previous = skeleton
        skeleton = _SKEL_CONTAINER_RUN.sub(rb"\1", skeleton)
    return skeleton

# Shape-signature key domains.  The fused loops append their small-int
# group code for scalar children (and 0 for floats, whose group is
# shared with ints), while every other path — feed_event, the
# value_scan fallback, TypeEncoder.encode, and container attaches —
# appends ``id(child)``.  The two domains can never collide: CPython
# ids are object addresses, far above the single-digit codes, so the
# same shape reached through different paths at worst occupies two
# cache slots resolving to the same canonical node (rec_of/arr_of are
# probe-first).  Any future code scheme must stay outside the id range.


class EventTypeEncoder(TypeEncoder):
    """Event- and token-driven fused map phase: text → canonical type.

    Extends :class:`TypeEncoder` with two zero-materialization inputs:

    - :meth:`feed_event` / :meth:`feed` consume the SAX-style events of
      :func:`repro.jsonvalue.events.iter_events` (or any well-formed
      event stream) and build canonical interned types *directly* — no
      DOM value, no per-document frame objects, just list frames of
      ``(shape-signature parts, child types)`` resolved through the
      shared record/array shape caches;
    - :meth:`encode_text` fuses one step further and runs the compiled
      structural scan: one regex-driven pass from JSON text to the
      canonical interned type (whole scalar members and elements per
      C-speed match), with the exact error behaviour (class, message,
      offset) of the DOM parser under its default options.

    Both paths produce, by object identity, the same node that
    ``table.intern(type_of(parse(text)))`` would — the conformance and
    fuzz suites pin this.  Duplicate object keys follow the parser's
    default last-wins policy.
    """

    __slots__ = ("_stack", "_empty_rec", "_key_cache", "_line_cache", "_line_stats")

    def _rebind(self) -> None:
        super()._rebind()
        table = self.table
        self._empty_rec = table.rec_of([])
        # bytes key → decoded str key, shared by every document the
        # encoder sees (keys repeat massively in real collections, so
        # after warmup the bytes scan decodes nothing at all).  Epoch
        # changes rebuild it only because _rebind is the one common
        # initialization hook; the cached strs carry no table state.
        self._key_cache: dict = {}
        # Line-shape cache of encode_lines: skeleton bytes → canonical
        # node of this epoch, plus [attempts, hits, enabled] adaptive
        # state.  Rebuilt per epoch — the cached nodes are table state.
        self._line_cache: dict = {}
        self._line_stats: list = [0, 0, True]
        # Open containers of the event-feed path.  Frames are plain
        # lists ``[is_object, keyparts, child types]``: keyparts is the
        # container's shape signature (alternating field name/child id
        # for records, child ids for arrays), exactly the shape-cache
        # key format of TypeEncoder.encode.
        self._stack: list[list] = []

    # ------------------------------------------------------------------
    # shared close steps (shape-cache resolution)
    # ------------------------------------------------------------------

    def _close_record(self, keyparts: list, ctypes: list) -> Type:
        key = tuple(keyparts)
        done = self._rec_cache.get(key)
        if done is None:
            table = self.table
            field_of = table.field_of
            fields: dict = {}
            # Duplicate keys: last wins, matching the DOM parser's
            # default duplicate_keys="last" (dict insertion order keeps
            # the record's shape signature stable either way).
            for name, t in zip(keyparts[0::2], ctypes):
                fields[name] = t
            done = table.rec_of([field_of(n, t) for n, t in fields.items()])
            self._rec_cache[key] = done
        return done

    def _close_array(self, keyparts: list, ctypes: list) -> Type:
        if not ctypes:
            return self._empty_arr
        key = tuple(keyparts)
        done = self._arr_cache.get(key)
        if done is None:
            table = self.table
            done = table.arr_of(table.union_of(ctypes))
            self._arr_cache[key] = done
        return done

    # ------------------------------------------------------------------
    # event-driven feed
    # ------------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Number of containers currently open in the event feed."""
        return len(self._stack)

    def reset(self) -> None:
        """Discard any in-flight event-feed state (after a bad stream)."""
        del self._stack[:]

    def _attach(self, done: Type) -> Optional[Type]:
        """Store a completed child; returns the type when it was a
        whole top-level document."""
        stack = self._stack
        if not stack:
            return done
        frame = stack[-1]
        keyparts = frame[1]
        if frame[0] and len(keyparts) != 2 * len(frame[2]) + 1:
            raise InferenceError("object value without a preceding key event")
        keyparts.append(id(done))
        frame[2].append(done)
        return None

    def feed_event(self, event: JsonEvent) -> Optional[Type]:
        """Absorb one parse event; returns the canonical interned type
        each time a top-level document completes, else ``None``.

        Raises :class:`~repro.errors.InferenceError` on ill-formed event
        streams (key outside an object, unmatched container end, ...);
        streams produced by :func:`repro.jsonvalue.events.iter_events`
        are well-formed by construction.
        """
        etype = event.type
        stack = self._stack
        if etype is JsonEventType.KEY:
            if not stack or not stack[-1][0]:
                raise InferenceError("key event outside an object")
            frame = stack[-1]
            keyparts = frame[1]
            if len(keyparts) != 2 * len(frame[2]):
                raise InferenceError("two key events without a value")
            keyparts.append(event.value)
            return None
        if etype is JsonEventType.VALUE:
            if not stack and self.table.epoch() is not self._epoch:
                self._rebind()
                stack = self._stack
            value = event.value
            atom = self._scalars.get(type(value))
            if atom is None:
                atom = self._scalar_slow(value)
                if atom is None:
                    raise InferenceError(
                        f"VALUE event carrying a container {value!r}"
                    )
            return self._attach(atom)
        if etype is JsonEventType.START_OBJECT or etype is JsonEventType.START_ARRAY:
            if not stack and self.table.epoch() is not self._epoch:
                self._rebind()
                stack = self._stack
            stack.append([etype is JsonEventType.START_OBJECT, [], []])
            return None
        if etype is JsonEventType.END_OBJECT or etype is JsonEventType.END_ARRAY:
            if not stack:
                raise InferenceError("container end without start")
            frame = stack[-1]
            if frame[0] is not (etype is JsonEventType.END_OBJECT):
                raise InferenceError("mismatched container end event")
            stack.pop()
            if frame[0]:
                keyparts = frame[1]
                if len(keyparts) != 2 * len(frame[2]):
                    raise InferenceError("key event without a following value")
                done = self._close_record(keyparts, frame[2])
            else:
                done = self._close_array(frame[1], frame[2])
            return self._attach(done)
        raise InferenceError(f"unknown event {etype!r}")  # pragma: no cover

    def feed(self, events: Iterable[JsonEvent]) -> Iterator[Type]:
        """Yield the canonical type of each top-level document in
        ``events`` (the generator analogue of :meth:`feed_event`)."""
        feed_event = self.feed_event
        for event in events:
            done = feed_event(event)
            if done is not None:
                yield done

    # ------------------------------------------------------------------
    # fused lexer loop: one pass from text to canonical type
    # ------------------------------------------------------------------

    def _fail_at(self, text: str, pos: int, message: str):
        """Raise the structural error the DOM parser would raise here.

        The parser works token-at-a-time, so its structural errors carry
        the *lexed* offending token — and when that token is itself
        malformed, the lexical error wins.  Reproduce both by lexing the
        offending position with the real scanner.  Line bookkeeping is
        computed here, on the terminal path, rather than tracked during
        the scan.
        """
        scanner = _Scanner(text)
        scanner.pos = pos
        scanner.line = text.count("\n", 0, pos) + 1
        scanner.line_start = text.rfind("\n", 0, pos) + 1
        token = scanner.next_token()  # may raise the (correct) lex error
        raise JsonParseError(message, token)

    def _fail_eof(self, text: str, phase: int):
        """Raise the phase-appropriate error for input ending early."""
        pos = len(text)
        line = text.count("\n") + 1
        column = pos - (text.rfind("\n") + 1) + 1
        eof = Token(TokenType.EOF, None, pos, pos, line, column)
        if phase == _PHASE_AFTER:
            raise JsonParseError("expected ',' or closing bracket", eof)
        if phase == _PHASE_KEY or phase == _PHASE_KEY_OR_CLOSE:
            raise JsonParseError("expected object key string", eof)
        raise JsonParseError("expected a JSON value", eof)

    def _fail_depth(self, text: str, pos: int, max_depth: int, is_object: bool):
        """Raise the parser's nesting-limit error for the bracket at ``pos``."""
        line = text.count("\n", 0, pos) + 1
        column = pos - (text.rfind("\n", 0, pos) + 1) + 1
        token_type = TokenType.LBRACE if is_object else TokenType.LBRACKET
        raise JsonParseError(
            f"maximum nesting depth of {max_depth} exceeded",
            Token(token_type, None, pos, pos + 1, line, column),
        )

    def encode_text(self, text: str, *, max_depth: int = 512) -> Type:
        """The canonical interned type of one JSON text.

        Identical (by object identity) to
        ``table.intern(type_of(parse(text)))`` but runs the compiled
        structural scan over the text: one phase-specific master regex
        consumes the inter-token whitespace *and* the next token per
        C-speed ``match`` call (strings, numbers, literals, punctuation
        — and for object members the key and its colon together), so no
        per-character Python dispatch happens on the happy path.  Scalar
        literals resolve to canonical atoms straight from which
        alternative matched (a string's *content* never matters to its
        type, only that it lexes); closing containers resolve through
        the shape caches.  Anything the patterns decline (escapes,
        malformed literals, structural errors) defers to the real lexer
        at the exact same position, so malformed text raises exactly
        what :func:`repro.jsonvalue.parser.parse` raises under its
        default options: the same
        :class:`~repro.jsonvalue.parser.JsonParseError` /
        :class:`~repro.jsonvalue.lexer.JsonLexError` class, message and
        offset.
        """
        table = self.table
        if table.epoch() is not self._epoch:
            self._rebind()
        int_atom = self._int
        flt_atom = self._flt
        str_atom = self._str
        bool_atom = self._bool
        null_atom = self._null
        value_scan = _VALUE_SCAN.match
        key_scan = _KEY_SCAN.match
        after_scan = _AFTER_SCAN.match
        member_scan = _MEMBER_SCAN.match
        element_scan = _ELEMENT_SCAN.match
        after_member_scan = _AFTER_MEMBER_SCAN.match
        after_element_scan = _AFTER_ELEMENT_SCAN.match
        ws_run = _WS_RUN.match
        close_record = self._close_record
        close_array = self._close_array
        empty_arr = self._empty_arr
        empty_rec = self._empty_rec
        length = len(text)
        pos = 0
        stack: list[list] = []
        phase = _PHASE_VALUE
        result: Optional[Type] = None
        # Set when the fused loop just declined at the current position:
        # the outer dispatch skips the (guaranteed-failing) re-match and
        # goes straight to the per-token scan.
        declined = False

        # Lazily synchronized lexer for the slow paths.  ``nl_pos`` is a
        # monotonically advancing anchor with known line bookkeeping, so
        # repeated slow tokens re-count newlines only over the text
        # between anchors (linear total), not from the start each time.
        scanner: Optional[_Scanner] = None
        nl_pos = 0
        nl_line = 1
        nl_start = 0

        def lex_at(p: int) -> _Scanner:
            nonlocal scanner, nl_pos, nl_line, nl_start
            if scanner is None:
                scanner = _Scanner(text)
            if p > nl_pos:
                newlines = text.count("\n", nl_pos, p)
                if newlines:
                    nl_line += newlines
                    nl_start = text.rfind("\n", nl_pos, p) + 1
                nl_pos = p
            scanner.pos = p
            scanner.line = nl_line
            scanner.line_start = nl_start
            return scanner

        while True:
            fused = None
            if phase == _PHASE_AFTER:
                m = after_scan(text, pos)
                if m is None:
                    # EOF (success at top level), or a non-punctuation
                    # token the parser would lex before failing.
                    ws_end = ws_run(text, pos).end()
                    if ws_end >= length:
                        if not stack:
                            assert result is not None
                            return result
                        self._fail_eof(text, phase)
                    if not stack:
                        self._fail_at(
                            text, ws_end, "trailing data after JSON document"
                        )
                    self._fail_at(text, ws_end, "expected ',' or closing bracket")
                end = m.end()
                ch = text[end - 1]
                if not stack:
                    self._fail_at(
                        text, end - 1, "trailing data after JSON document"
                    )
                frame = stack[-1]
                if ch == ",":
                    pos = end
                    phase = _PHASE_KEY if frame[0] else _PHASE_VALUE
                    continue
                # "}" or "]": must close the innermost container's kind.
                if (ch == "}") != frame[0]:
                    self._fail_at(text, end - 1, "expected ',' or closing bracket")
                pos = end
                stack.pop()
                if frame[0]:
                    completed = close_record(frame[1], frame[2])
                else:
                    completed = close_array(frame[1], frame[2])
                if not stack:
                    result = completed
                    continue
                parent = stack[-1]
                parent[1].append(id(completed))
                parent[2].append(completed)
                # Chain straight back into the fused loop when the next
                # sibling member/element (comma included) matches.
                if parent[0]:
                    fused = after_member_scan(text, pos)
                else:
                    fused = after_element_scan(text, pos)
                if fused is None:
                    continue

            elif phase == _PHASE_KEY or phase == _PHASE_KEY_OR_CLOSE:
                # Fused fast path: whole scalar members (key, colon,
                # value, terminator) in one match each — or the key and
                # its opening bracket when the value is a container —
                # handled by the unified fused loop below.  Anything
                # else (escaped keys, malformed input, "}") takes the
                # per-token scan here.
                if declined:
                    declined = False
                else:
                    fused = member_scan(text, pos)
                if fused is None:
                    m = key_scan(text, pos)
                    if m is None:
                        # Escaped key string, missing colon, EOF, garbage.
                        ws_end = ws_run(text, pos).end()
                        if ws_end >= length:
                            self._fail_eof(text, phase)
                        if text[ws_end] != '"':
                            self._fail_at(
                                text, ws_end, "expected object key string"
                            )
                        lexer = lex_at(ws_end)
                        name = lexer.scan_string().value  # may raise in place
                        colon = ws_run(text, lexer.pos).end()
                        if colon >= length or text[colon] != ":":
                            self._fail_at(text, colon, "expected ':'")
                        stack[-1][1].append(name)
                        pos = colon + 1
                        phase = _PHASE_VALUE
                        continue
                    end = m.end()
                    if m.lastindex == 2:  # "}"
                        if phase == _PHASE_KEY:
                            # A comma promised another member.
                            self._fail_at(
                                text, end - 1, "expected object key string"
                            )
                        pos = end
                        stack.pop()
                        completed = self._empty_rec
                        if stack:
                            parent = stack[-1]
                            parent[1].append(id(completed))
                            parent[2].append(completed)
                        else:
                            result = completed
                        phase = _PHASE_AFTER
                        continue
                    # Key string and its colon, one match.
                    stack[-1][1].append(m.group(1))
                    pos = end
                    phase = _PHASE_VALUE
                    continue

            elif stack and not stack[-1][0]:
                # _PHASE_VALUE / _PHASE_VALUE_OR_CLOSE inside an array:
                # scalar elements (and container-opening elements) take
                # the unified fused loop below.
                if declined:
                    declined = False
                else:
                    fused = element_scan(text, pos)

            if fused is not None:
                # ------------------------------------------------------
                # The unified fused loop: one iteration per member or
                # element.  ``m`` is a member match (in objects) or an
                # element match (in arrays); closing a container flows
                # straight into the parent's next sibling through the
                # ","-including continuation patterns, so deeply nested
                # documents stay inside this loop.
                # ------------------------------------------------------
                m = fused
                frame = stack[-1]
                keyparts = frame[1]
                ctypes = frame[2]
                in_object = frame[0]
                while True:
                    if in_object:
                        keyparts.append(m.group(1))
                        kind = m.lastindex
                        pos = m.end()
                        if kind == 2:
                            atom = str_atom
                        elif kind == 3:
                            tail_start, tail_end = m.span(4)
                            if tail_start == tail_end:
                                atom = int_atom
                            else:
                                # Distinct signature code: ints and
                                # floats share the number group.
                                kind = 0
                                atom = flt_atom
                        elif kind == 5:
                            atom = bool_atom
                        elif kind == 6:
                            atom = null_atom
                        elif kind == 7:  # empty array value
                            if len(stack) >= max_depth:
                                self._fail_depth(text, m.start(7), max_depth, False)
                            atom = empty_arr
                        elif kind == 8:  # empty object value
                            if len(stack) >= max_depth:
                                self._fail_depth(text, m.start(8), max_depth, True)
                            atom = empty_rec
                        else:  # kind == 9: the value opens a container
                            in_object = text[pos - 1] == "{"
                            if len(stack) >= max_depth:
                                self._fail_depth(
                                    text, pos - 1, max_depth, in_object
                                )
                            frame = [in_object, [], []]
                            stack.append(frame)
                            keyparts = frame[1]
                            ctypes = frame[2]
                            if in_object:
                                m = member_scan(text, pos)
                                if m is None:
                                    declined = True
                                    phase = _PHASE_KEY_OR_CLOSE
                                    break
                            else:
                                m = element_scan(text, pos)
                                if m is None:
                                    declined = True
                                    phase = _PHASE_VALUE_OR_CLOSE
                                    break
                            continue
                        keyparts.append(kind)
                        ctypes.append(atom)
                        if text[pos - 1] == ",":
                            m = member_scan(text, pos)
                            if m is not None:
                                continue
                            declined = True
                            phase = _PHASE_KEY
                            break
                        # "}" — the record is complete.
                        stack.pop()
                        completed = close_record(keyparts, ctypes)
                    else:
                        kind = m.lastindex
                        pos = m.end()
                        if kind == 1:
                            atom = str_atom
                        elif kind == 2:
                            tail_start, tail_end = m.span(3)
                            if tail_start == tail_end:
                                atom = int_atom
                            else:
                                # Distinct signature code: ints and
                                # floats share the number group.
                                kind = 0
                                atom = flt_atom
                        elif kind == 4:
                            atom = bool_atom
                        elif kind == 5:
                            atom = null_atom
                        elif kind == 6:  # empty array element
                            if len(stack) >= max_depth:
                                self._fail_depth(text, m.start(6), max_depth, False)
                            atom = empty_arr
                        elif kind == 7:  # empty object element
                            if len(stack) >= max_depth:
                                self._fail_depth(text, m.start(7), max_depth, True)
                            atom = empty_rec
                        else:  # kind == 8: the element opens a container
                            in_object = text[pos - 1] == "{"
                            if len(stack) >= max_depth:
                                self._fail_depth(
                                    text, pos - 1, max_depth, in_object
                                )
                            frame = [in_object, [], []]
                            stack.append(frame)
                            keyparts = frame[1]
                            ctypes = frame[2]
                            if in_object:
                                m = member_scan(text, pos)
                                if m is None:
                                    declined = True
                                    phase = _PHASE_KEY_OR_CLOSE
                                    break
                            else:
                                m = element_scan(text, pos)
                                if m is None:
                                    declined = True
                                    phase = _PHASE_VALUE_OR_CLOSE
                                    break
                            continue
                        keyparts.append(kind)
                        ctypes.append(atom)
                        if text[pos - 1] == ",":
                            m = element_scan(text, pos)
                            if m is not None:
                                continue
                            declined = True
                            phase = _PHASE_VALUE
                            break
                        # "]" — the array is complete.
                        stack.pop()
                        completed = close_array(keyparts, ctypes)
                    # Attach the closed container and continue with its
                    # parent's next sibling, comma fused into the match.
                    if not stack:
                        result = completed
                        phase = _PHASE_AFTER
                        break
                    frame = stack[-1]
                    keyparts = frame[1]
                    ctypes = frame[2]
                    in_object = frame[0]
                    keyparts.append(id(completed))
                    ctypes.append(completed)
                    if in_object:
                        m = after_member_scan(text, pos)
                    else:
                        m = after_element_scan(text, pos)
                    if m is None:
                        phase = _PHASE_AFTER
                        break
                continue

            # _PHASE_VALUE / _PHASE_VALUE_OR_CLOSE, per-token scan.
            m = value_scan(text, pos)
            if m is None:
                # Escaped string, malformed literal, EOF, or garbage —
                # the real lexer resolves or raises at this position.
                ws_end = ws_run(text, pos).end()
                if ws_end >= length:
                    self._fail_eof(text, phase)
                ch = text[ws_end]
                if ch == '"':
                    lexer = lex_at(ws_end)
                    lexer.scan_string()  # may raise in place
                    pos = lexer.pos
                    completed = str_atom
                elif ch in _NUMBER_START:
                    lexer = lex_at(ws_end)
                    token = lexer.scan_number()  # raises (the scan declined)
                    pos = lexer.pos
                    completed = (
                        int_atom if token.value.__class__ is int else flt_atom
                    )
                else:
                    self._fail_at(text, ws_end, "expected a JSON value")
            else:
                idx = m.lastindex
                end = m.end()
                if idx == 1:  # simple string: its content never matters
                    pos = end
                    completed = str_atom
                elif idx == 2:  # number
                    if end < length and text[end] in _NUMBER_BOUNDARY:
                        # The maximal match may extend into a malformed
                        # literal ("01", "1.e5", "1e+"): re-scan with the
                        # lexer for the exact outcome.
                        lexer = lex_at(m.start(2))
                        token = lexer.scan_number()
                        pos = lexer.pos
                        completed = (
                            int_atom if token.value.__class__ is int else flt_atom
                        )
                    else:
                        pos = end
                        tail_start, tail_end = m.span(3)
                        completed = (
                            int_atom if tail_start == tail_end else flt_atom
                        )
                elif idx == 4:  # true / false
                    pos = end
                    completed = bool_atom
                elif idx == 5:  # null
                    pos = end
                    completed = null_atom
                elif idx == 6:  # empty array
                    if len(stack) >= max_depth:
                        self._fail_depth(text, m.start(6), max_depth, False)
                    pos = end
                    completed = empty_arr
                elif idx == 7:  # empty object
                    if len(stack) >= max_depth:
                        self._fail_depth(text, m.start(7), max_depth, True)
                    pos = end
                    completed = empty_rec
                elif idx == 8:  # "{"
                    if len(stack) >= max_depth:
                        self._fail_depth(text, end - 1, max_depth, True)
                    pos = end
                    stack.append([True, [], []])
                    phase = _PHASE_KEY_OR_CLOSE
                    continue
                elif idx == 9:  # "["
                    if len(stack) >= max_depth:
                        self._fail_depth(text, end - 1, max_depth, False)
                    pos = end
                    stack.append([False, [], []])
                    phase = _PHASE_VALUE_OR_CLOSE
                    continue
                else:  # idx == 10: "]"
                    if phase != _PHASE_VALUE_OR_CLOSE:
                        self._fail_at(text, end - 1, "expected a JSON value")
                    pos = end
                    stack.pop()
                    completed = empty_arr
            if stack:
                frame = stack[-1]
                frame[1].append(id(completed))
                frame[2].append(completed)
            else:
                result = completed
            phase = _PHASE_AFTER
            continue

    # ------------------------------------------------------------------
    # bytes-native fused scan: mmap/shm byte ranges to canonical types
    # ------------------------------------------------------------------

    def _key_str(self, raw: bytes) -> Optional[str]:
        """The decoded object key for raw key-body bytes (cached).

        ``raw`` is the body a byte pattern matched: escapes (if any) are
        guaranteed valid by the pattern, but the bytes may still be
        malformed UTF-8 — that case returns ``None`` (uncached) and the
        caller delegates, so the document's decode raises the exact
        ``UnicodeDecodeError`` the text pipeline would.
        """
        cache = self._key_cache
        name = cache.get(raw)
        if name is None:
            try:
                if b"\\" in raw:
                    name = _Scanner(
                        '"' + raw.decode("utf-8") + '"'
                    ).scan_string().value
                else:
                    name = raw.decode("utf-8")
            except UnicodeDecodeError:
                return None
            cache[raw] = name
        return name

    def _delegate_bytes(self, data, start: int, end: int, max_depth: int) -> Type:
        """Decode the document range and re-run the str machine.

        The bytes scan delegates only when the range cannot scan as
        valid JSON: the decode raises the exact ``UnicodeDecodeError``
        the text pipeline's up-front line decode would (same bytes,
        same positions), and on decodable input ``encode_text`` raises
        the parser-exact error — class, message, and *character* offset
        relative to the range start — or, in the rare shapes the byte
        patterns under-approximate, returns the correct type.
        """
        text = bytes(data[start:end]).decode("utf-8")
        return self.encode_text(text, max_depth=max_depth)

    def encode_bytes(
        self,
        data,
        start: int = 0,
        end: Optional[int] = None,
        *,
        max_depth: int = 512,
    ) -> Type:
        """The canonical interned type of one JSON document held as
        UTF-8 bytes — identical (by object identity, and by error class/
        message/offset on malformed input) to
        ``encode_text(bytes(data[start:end]).decode("utf-8"))``, without
        the decode.

        ``data`` is anything the buffer protocol covers: ``bytes``, an
        ``mmap.mmap``, a ``memoryview`` over a shared-memory segment.
        The scan mirrors :meth:`encode_text`'s compiled structural scan
        with bytes master patterns (identical group layout, so both
        machines share one set of shape caches): string *content* —
        multibyte UTF-8 included — is skipped structurally and never
        decoded, with UTF-8 validity checked lazily once per document
        (a high-byte search, then a strict-validation match only when
        one exists); object keys resolve through a bytes→str cache, so
        each distinct key decodes once per encoder.  Anything the byte
        patterns decline — which valid documents never hit — decodes
        the range lazily and re-runs the str machine for the exact
        error (character offsets relative to ``start``).
        """
        if end is None:
            end = len(data)
        table = self.table
        if table.epoch() is not self._epoch:
            self._rebind()
        int_atom = self._int
        flt_atom = self._flt
        str_atom = self._str
        bool_atom = self._bool
        null_atom = self._null
        value_scan = _BYTES_VALUE_SCAN.match
        key_scan = _BYTES_KEY_SCAN.match
        after_scan = _BYTES_AFTER_SCAN.match
        member_scan = _BYTES_MEMBER_SCAN.match
        element_scan = _BYTES_ELEMENT_SCAN.match
        after_member_scan = _BYTES_AFTER_MEMBER_SCAN.match
        after_element_scan = _BYTES_AFTER_ELEMENT_SCAN.match
        ws_run = _BYTES_WS_RUN.match
        key_str = self._key_str
        close_record = self._close_record
        close_array = self._close_array
        empty_arr = self._empty_arr
        empty_rec = self._empty_rec
        doc_start = start
        length = end
        pos = start
        stack: list[list] = []
        phase = _PHASE_VALUE
        result: Optional[Type] = None
        # Set when the fused loop just declined at the current position
        # (mirrors encode_text's outer dispatch).
        declined = False

        while True:
            fused = None
            if phase == _PHASE_AFTER:
                m = after_scan(data, pos, length)
                if m is None:
                    ws_end = ws_run(data, pos, length).end()
                    if ws_end >= length and not stack:
                        assert result is not None
                        # Lazy UTF-8 validity, once per document: pure
                        # ASCII returns straight away; high bytes run
                        # one strict-validation match (never a decode);
                        # malformed UTF-8 delegates for the exact
                        # UnicodeDecodeError.
                        if _BYTES_HIGH_BYTE.search(data, doc_start, length) is None:
                            return result
                        run = _BYTES_UTF8_RUN.match(data, doc_start, length)
                        if run.end() == length:
                            return result
                        return self._delegate_bytes(
                            data, doc_start, length, max_depth
                        )
                    # EOF inside a container, or trailing garbage.
                    return self._delegate_bytes(data, doc_start, length, max_depth)
                mend = m.end()
                ch = data[mend - 1]
                if not stack:
                    # Trailing data after the document.
                    return self._delegate_bytes(data, doc_start, length, max_depth)
                frame = stack[-1]
                if ch == _COMMA_BYTE:
                    pos = mend
                    phase = _PHASE_KEY if frame[0] else _PHASE_VALUE
                    continue
                # "}" or "]": must close the innermost container's kind.
                if (ch == 0x7D) != frame[0]:
                    return self._delegate_bytes(data, doc_start, length, max_depth)
                pos = mend
                stack.pop()
                if frame[0]:
                    completed = close_record(frame[1], frame[2])
                else:
                    completed = close_array(frame[1], frame[2])
                if not stack:
                    result = completed
                    continue
                parent = stack[-1]
                parent[1].append(id(completed))
                parent[2].append(completed)
                if parent[0]:
                    fused = after_member_scan(data, pos, length)
                else:
                    fused = after_element_scan(data, pos, length)
                if fused is None:
                    continue

            elif phase == _PHASE_KEY or phase == _PHASE_KEY_OR_CLOSE:
                if declined:
                    declined = False
                else:
                    fused = member_scan(data, pos, length)
                if fused is None:
                    m = key_scan(data, pos, length)
                    if m is None:
                        # Malformed key, missing colon, EOF, garbage.
                        return self._delegate_bytes(
                            data, doc_start, length, max_depth
                        )
                    mend = m.end()
                    if m.lastindex == 2:  # "}"
                        if phase == _PHASE_KEY:
                            # A comma promised another member.
                            return self._delegate_bytes(
                                data, doc_start, length, max_depth
                            )
                        pos = mend
                        stack.pop()
                        completed = empty_rec
                        if stack:
                            parent = stack[-1]
                            parent[1].append(id(completed))
                            parent[2].append(completed)
                        else:
                            result = completed
                        phase = _PHASE_AFTER
                        continue
                    # Key string (escapes included) and its colon.
                    name = key_str(m.group(1))
                    if name is None:  # malformed UTF-8 in the key
                        return self._delegate_bytes(
                            data, doc_start, length, max_depth
                        )
                    stack[-1][1].append(name)
                    pos = mend
                    phase = _PHASE_VALUE
                    continue

            elif stack and not stack[-1][0]:
                if declined:
                    declined = False
                else:
                    fused = element_scan(data, pos, length)

            if fused is not None:
                # The unified fused loop, one iteration per member or
                # element — byte-identical control flow to encode_text.
                m = fused
                frame = stack[-1]
                keyparts = frame[1]
                ctypes = frame[2]
                in_object = frame[0]
                while True:
                    if in_object:
                        name = key_str(m.group(1))
                        if name is None:  # malformed UTF-8 in the key
                            return self._delegate_bytes(
                                data, doc_start, length, max_depth
                            )
                        keyparts.append(name)
                        kind = m.lastindex
                        pos = m.end()
                        if kind == 2:
                            atom = str_atom
                        elif kind == 3:
                            tail_start, tail_end = m.span(4)
                            if tail_start == tail_end:
                                atom = int_atom
                            else:
                                kind = 0
                                atom = flt_atom
                        elif kind == 5:
                            atom = bool_atom
                        elif kind == 6:
                            atom = null_atom
                        elif kind == 7:  # empty array value
                            if len(stack) >= max_depth:
                                return self._delegate_bytes(
                                    data, doc_start, length, max_depth
                                )
                            atom = empty_arr
                        elif kind == 8:  # empty object value
                            if len(stack) >= max_depth:
                                return self._delegate_bytes(
                                    data, doc_start, length, max_depth
                                )
                            atom = empty_rec
                        else:  # kind == 9: the value opens a container
                            in_object = data[pos - 1] == _LBRACE_BYTE
                            if len(stack) >= max_depth:
                                return self._delegate_bytes(
                                    data, doc_start, length, max_depth
                                )
                            frame = [in_object, [], []]
                            stack.append(frame)
                            keyparts = frame[1]
                            ctypes = frame[2]
                            if in_object:
                                m = member_scan(data, pos, length)
                                if m is None:
                                    declined = True
                                    phase = _PHASE_KEY_OR_CLOSE
                                    break
                            else:
                                m = element_scan(data, pos, length)
                                if m is None:
                                    declined = True
                                    phase = _PHASE_VALUE_OR_CLOSE
                                    break
                            continue
                        keyparts.append(kind)
                        ctypes.append(atom)
                        if data[pos - 1] == _COMMA_BYTE:
                            m = member_scan(data, pos, length)
                            if m is not None:
                                continue
                            declined = True
                            phase = _PHASE_KEY
                            break
                        # "}" — the record is complete.
                        stack.pop()
                        completed = close_record(keyparts, ctypes)
                    else:
                        kind = m.lastindex
                        pos = m.end()
                        if kind == 1:
                            atom = str_atom
                        elif kind == 2:
                            tail_start, tail_end = m.span(3)
                            if tail_start == tail_end:
                                atom = int_atom
                            else:
                                kind = 0
                                atom = flt_atom
                        elif kind == 4:
                            atom = bool_atom
                        elif kind == 5:
                            atom = null_atom
                        elif kind == 6:  # empty array element
                            if len(stack) >= max_depth:
                                return self._delegate_bytes(
                                    data, doc_start, length, max_depth
                                )
                            atom = empty_arr
                        elif kind == 7:  # empty object element
                            if len(stack) >= max_depth:
                                return self._delegate_bytes(
                                    data, doc_start, length, max_depth
                                )
                            atom = empty_rec
                        else:  # kind == 8: the element opens a container
                            in_object = data[pos - 1] == _LBRACE_BYTE
                            if len(stack) >= max_depth:
                                return self._delegate_bytes(
                                    data, doc_start, length, max_depth
                                )
                            frame = [in_object, [], []]
                            stack.append(frame)
                            keyparts = frame[1]
                            ctypes = frame[2]
                            if in_object:
                                m = member_scan(data, pos, length)
                                if m is None:
                                    declined = True
                                    phase = _PHASE_KEY_OR_CLOSE
                                    break
                            else:
                                m = element_scan(data, pos, length)
                                if m is None:
                                    declined = True
                                    phase = _PHASE_VALUE_OR_CLOSE
                                    break
                            continue
                        keyparts.append(kind)
                        ctypes.append(atom)
                        if data[pos - 1] == _COMMA_BYTE:
                            m = element_scan(data, pos, length)
                            if m is not None:
                                continue
                            declined = True
                            phase = _PHASE_VALUE
                            break
                        # "]" — the array is complete.
                        stack.pop()
                        completed = close_array(keyparts, ctypes)
                    # Attach the closed container and continue with its
                    # parent's next sibling, comma fused into the match.
                    if not stack:
                        result = completed
                        phase = _PHASE_AFTER
                        break
                    frame = stack[-1]
                    keyparts = frame[1]
                    ctypes = frame[2]
                    in_object = frame[0]
                    keyparts.append(id(completed))
                    ctypes.append(completed)
                    if in_object:
                        m = after_member_scan(data, pos, length)
                    else:
                        m = after_element_scan(data, pos, length)
                    if m is None:
                        phase = _PHASE_AFTER
                        break
                continue

            # _PHASE_VALUE / _PHASE_VALUE_OR_CLOSE, per-token scan.
            m = value_scan(data, pos, length)
            if m is None:
                # Malformed token, malformed UTF-8, EOF, or garbage —
                # the decode + str machine resolves with the exact error.
                return self._delegate_bytes(data, doc_start, length, max_depth)
            idx = m.lastindex
            mend = m.end()
            if idx == 1:  # string (escapes included): content never matters
                pos = mend
                completed = str_atom
            elif idx == 2:  # number
                if mend < length and data[mend] in _BYTES_NUMBER_BOUNDARY:
                    # The maximal match may extend into a malformed
                    # literal ("01", "1.e5") — and even when the lexer
                    # would re-scan a shorter valid token ("1.5.5"), the
                    # leftover boundary char is a guaranteed structural
                    # error: delegate for the exact outcome.
                    return self._delegate_bytes(data, doc_start, length, max_depth)
                pos = mend
                tail_start, tail_end = m.span(3)
                completed = int_atom if tail_start == tail_end else flt_atom
            elif idx == 4:  # true / false
                pos = mend
                completed = bool_atom
            elif idx == 5:  # null
                pos = mend
                completed = null_atom
            elif idx == 6:  # empty array
                if len(stack) >= max_depth:
                    return self._delegate_bytes(data, doc_start, length, max_depth)
                pos = mend
                completed = empty_arr
            elif idx == 7:  # empty object
                if len(stack) >= max_depth:
                    return self._delegate_bytes(data, doc_start, length, max_depth)
                pos = mend
                completed = empty_rec
            elif idx == 8:  # "{"
                if len(stack) >= max_depth:
                    return self._delegate_bytes(data, doc_start, length, max_depth)
                pos = mend
                stack.append([True, [], []])
                phase = _PHASE_KEY_OR_CLOSE
                continue
            elif idx == 9:  # "["
                if len(stack) >= max_depth:
                    return self._delegate_bytes(data, doc_start, length, max_depth)
                pos = mend
                stack.append([False, [], []])
                phase = _PHASE_VALUE_OR_CLOSE
                continue
            else:  # idx == 10: "]"
                if phase != _PHASE_VALUE_OR_CLOSE:
                    return self._delegate_bytes(data, doc_start, length, max_depth)
                pos = mend
                stack.pop()
                completed = empty_arr
            if stack:
                frame = stack[-1]
                frame[1].append(id(completed))
                frame[2].append(completed)
            else:
                result = completed
            phase = _PHASE_AFTER
            continue

    # ------------------------------------------------------------------
    # batched line-shape cache: many raw lines per C pass
    # ------------------------------------------------------------------

    def _encode_line_fallback(self, line: bytes, max_depth: int) -> Type:
        """Type one raw line outside the shape cache.

        Decode-then-str-machine: a line's decode is nearly free next to
        its scan, CPython's str regex engine outruns its bytes engine,
        and the error behaviour is *definitionally* identical (the
        decode raises the pipeline's exact ``UnicodeDecodeError``; the
        str machine raises the parser's exact error).
        """
        return self.encode_text(line.decode("utf-8"), max_depth=max_depth)

    def encode_lines(self, lines, *, max_depth: int = 512) -> list:
        """Canonical interned types for a batch of raw NDJSON lines.

        ``lines`` is a sequence of ``bytes``, one non-blank JSON
        document each; the result list is aligned with it.  Semantics
        are exactly ``[encode_bytes(line) for line in lines]`` — same
        types by identity, same errors — but the work is batched: a few
        whole-buffer C passes skeletonize every line at once (see the
        line-shape cache notes above), repeated shapes resolve with one
        dict probe per line, and only novel shapes run the scan machine.
        The cache persists on the encoder across batches and is rebuilt
        when the backing table starts a new epoch.

        Corpora whose shapes do not repeat stop paying for
        skeletonization: when the hit rate stays under 25% after the
        first few thousand lines, the encoder disables the cache and
        subsequent batches go straight to the machine.
        """
        table = self.table
        if table.epoch() is not self._epoch:
            self._rebind()
        stats = self._line_stats
        fallback = self._encode_line_fallback
        if not stats[2] or max_depth != 512:
            # Cache disabled (or a non-default nesting limit, which the
            # skeleton key does not carry): straight to the machine.
            return [fallback(line, max_depth) for line in lines]

        whole = b"\n".join(lines)
        skeleton = _SKEL_STRIP(whole)
        if skeleton is None:
            # A line contained a raw line break: alignment is gone.
            return [fallback(line, max_depth) for line in lines]
        sk_lines, sk_pre_lines, guards = skeleton
        if len(sk_lines) != len(lines):  # pragma: no cover - break bytes
            return [fallback(line, max_depth) for line in lines]
        ctrl_any, bsl_any, wskey_any, high_any, lz_any, kd_any = guards

        cache = self._line_cache
        get = cache.get
        out = []
        append = out.append
        hits = 0
        store = len(cache) < _SKEL_CACHE_LIMIT
        # Guard-tripping lines never touch the cache — neither storing
        # (their skeleton may misrepresent them) nor *hitting* (a raw
        # control byte can forge the skeleton markers and alias a clean
        # line's entry).  The per-line searches run only when the
        # corpus-level flags fired, so clean corpora pay nothing.
        guarded = ctrl_any or bsl_any or wskey_any or lz_any or kd_any
        for i, line in enumerate(lines):
            if guarded and (
                (ctrl_any and _SKEL_CTRL.search(line))
                or (bsl_any and b"\\" in line)
                or (wskey_any and _SKEL_WSKEY.search(line))
                or (lz_any and _SKEL_LEADING_ZERO.search(sk_pre_lines[i]))
                or (kd_any and _SKEL_KEYDIG.search(sk_pre_lines[i]))
            ):
                append(fallback(line, max_depth))
                continue
            skel = sk_lines[i]
            done = get(skel)
            if done is None:
                canonical = _collapse_skeleton(skel)
                done = get(canonical)
                if done is None:
                    done = fallback(line, max_depth)
                    if store:
                        cache[canonical] = done
                        if canonical != skel:
                            cache[skel] = done
                    append(done)
                    continue
                # Canonical hit through a fresh alias.
                if store:
                    cache[skel] = done
            # UTF-8 validity is per line (cached shapes share nothing
            # with this line's string contents).
            if high_any and _BYTES_HIGH_BYTE.search(line) is not None:
                run = _BYTES_UTF8_RUN.match(line)
                if run.end() != len(line):
                    line.decode("utf-8")  # raises the exact error
            hits += 1
            append(done)
        stats[0] += len(lines)
        stats[1] += hits
        if stats[0] >= _SKEL_MIN_ATTEMPTS and stats[1] * 4 < stats[0]:
            stats[2] = False
        return out

    @property
    def line_cache_stats(self) -> tuple:
        """``(attempts, hits, enabled)`` of the line-shape cache.

        Attempts count lines that entered :meth:`encode_lines` with the
        cache enabled; hits are the ones resolved by a cached skeleton.
        The adaptive scheduler reads the measured hit rate back into its
        cost model, so the timed sample prices warm cached folding
        instead of assuming every line pays the full structural scan.
        """
        attempts, hits, enabled = self._line_stats
        return attempts, hits, bool(enabled)


def _SKEL_STRIP(whole: bytes):
    """Run the corpus-level skeleton passes over one joined buffer.

    Returns ``(skeleton lines, pre-fold skeleton lines or None, guard
    flags)``, or ``None`` when line alignment cannot be preserved.
    """
    ctrl_any = _SKEL_CTRL.search(whole) is not None
    bsl_any = b"\\" in whole
    wskey_any = _SKEL_WSKEY.search(whole) is not None
    high_any = _BYTES_HIGH_BYTE.search(whole) is not None
    marked = whole.replace(b'":', b"\x04")
    strip = _SKEL_STRIP_FULL if bsl_any else _SKEL_STRIP_SIMPLE
    sk_pre = strip.sub(b"\x03", marked)
    if _SKEL_KEYDIG.search(sk_pre) is not None:
        # Shift key-region digits out of the fold's way; the guards
        # below then see only what the protect pass could not cover.
        sk_pre = _SKEL_KEYDIG_PROTECT.sub(_skel_shift_key_digits, sk_pre)
    lz_any = _SKEL_LEADING_ZERO.search(sk_pre) is not None
    kd_any = _SKEL_KEYDIG.search(sk_pre) is not None
    sk_all = _SKEL_RUNS.sub(b"0", sk_pre.translate(_SKEL_FOLD))
    sk_lines = _SKEL_BREAK.split(sk_all)
    sk_pre_lines = _SKEL_BREAK.split(sk_pre) if (lz_any or kd_any) else None
    if sk_pre_lines is not None and len(sk_pre_lines) != len(sk_lines):
        return None  # pragma: no cover - break bytes inside a line
    return (
        sk_lines,
        sk_pre_lines,
        (ctrl_any, bsl_any, wskey_any, high_any, lz_any, kd_any),
    )


_DEFAULT_ENCODER: Optional[TypeEncoder] = None


def type_of_interned(value: Any, table: Optional[InternTable] = None) -> Type:
    """The canonical interned type of ``value`` — ``intern(type_of(value))``
    fused into one probe-first, recursion-free pass.

    With no ``table`` this uses a process-wide encoder bound to the
    global intern table; pass an explicit table to keep workloads
    isolated (a fresh encoder per call — hold a :class:`TypeEncoder`
    yourself for batch work against a private table).
    """
    global _DEFAULT_ENCODER
    if table is None or table is global_table():
        encoder = _DEFAULT_ENCODER
        if encoder is None:
            encoder = _DEFAULT_ENCODER = TypeEncoder(global_table())
        return encoder.encode(value)
    return TypeEncoder(table).encode(value)
