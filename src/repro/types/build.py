"""Mapping JSON values to their exact types (the *map* phase of inference).

``type_of`` computes the most precise type of a single value in this
algebra: records list every present field as required; arrays abstract
their elements by the union of the element types (the abstraction step the
EDBT '17 paper applies at arrays, since arrays are homogeneous-ish in
practice and element positions are not tracked).

``type_of_interned`` / :class:`TypeEncoder` are the *fused* map phase:
they construct canonical interned terms directly against an
:class:`~repro.types.intern.InternTable` — probe-first, bottom-up, with
an explicit stack instead of recursion — so typing a document the table
has seen the shape of before allocates nothing and never builds the raw
tree that ``intern(type_of(value))`` would throw away.  The composition
law ``type_of_interned(v) is intern(type_of(v))`` is pinned by the
differential property tests in ``tests/test_build_fused_differential.py``.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.jsonvalue.model import JsonKind, is_integer_value, kind_of
from repro.types.intern import InternTable, global_table
from repro.types.simplify import union
from repro.types.terms import (
    ArrType,
    BOOL,
    BOT,
    FLT,
    FieldType,
    INT,
    NULL,
    RecType,
    STR,
    Type,
)


def type_of(value: Any) -> Type:
    """Return the exact type of ``value``.

    - scalars map to their atom (ints to ``Int``, floats to ``Flt``);
    - objects map to a record with every field required;
    - arrays map to ``[T1 + ... + Tn]`` over the element types, with the
      empty array mapping to ``[Bot]``.
    """
    kind = kind_of(value)
    if kind is JsonKind.NULL:
        return NULL
    if kind is JsonKind.BOOLEAN:
        return BOOL
    if kind is JsonKind.NUMBER:
        return INT if is_integer_value(value) else FLT
    if kind is JsonKind.STRING:
        return STR
    if kind is JsonKind.ARRAY:
        if not value:
            return ArrType(BOT)
        return ArrType(union(type_of(v) for v in value))
    # Object.
    return RecType(
        tuple(FieldType(name, type_of(v), required=True) for name, v in value.items())
    )


class TypeEncoder:
    """Fused map phase: one JSON value → its canonical interned type.

    Equivalent to ``table.intern(type_of(value))`` but:

    - **recursion-free** — containers are traversed with an explicit
      frame stack, so arbitrarily deep documents encode without touching
      Python's recursion limit (the seed ``type_of`` cannot);
    - **probe-first** — every node is looked up in the intern table by
      child identity before anything is allocated, so repeated structure
      costs dictionary probes only;
    - **shape-cached** — every closing container is resolved through a
      per-encoder cache keyed on its child signature (field names and
      canonical child identities for records, member identities for
      arrays), so the repeated record shapes that dominate real
      collections skip even the per-field intern probes and the
      field-sort of record construction.

    The shape caches are the *per-batch* caches: private to the encoder
    instance and rebound automatically when the backing table starts a
    new epoch (:meth:`InternTable.clear`), so stale canonical nodes can
    never leak across a clear.
    """

    __slots__ = (
        "table",
        "_epoch",
        "_scalars",
        "_null",
        "_bool",
        "_int",
        "_flt",
        "_str",
        "_empty_arr",
        "_rec_cache",
        "_arr_cache",
    )

    def __init__(self, table: Optional[InternTable] = None) -> None:
        self.table = table if table is not None else global_table()
        self._rebind()

    def _rebind(self) -> None:
        """(Re)acquire canonical leaves for the table's current epoch."""
        table = self.table
        self._epoch = table.epoch()
        self._null = table.intern(NULL)
        self._bool = table.intern(BOOL)
        self._int = table.intern(INT)
        self._flt = table.intern(FLT)
        self._str = table.intern(STR)
        self._empty_arr = table.arr_of(table.intern(BOT))
        # Exact-type scalar dispatch.  type() distinguishes bool from int
        # (bool cannot be subclassed), so this is the whole kind_of chain
        # in one dictionary probe; scalar *subclasses* fall through to
        # _scalar_slow.
        self._scalars = {
            type(None): self._null,
            bool: self._bool,
            int: self._int,
            float: self._flt,
            str: self._str,
        }
        self._rec_cache: dict = {}
        self._arr_cache: dict = {}

    # ------------------------------------------------------------------

    def _scalar_slow(self, value: Any) -> Optional[Type]:
        """Classify values whose exact type missed the dispatch table.

        Returns the canonical atom for scalar subclasses, ``None`` for
        dict/list (subclasses included), and raises the same ``TypeError``
        as :func:`repro.jsonvalue.model.kind_of` for non-JSON values.
        """
        if isinstance(value, (dict, list)):
            return None
        kind = kind_of(value)
        if kind is JsonKind.NULL:
            return self._null
        if kind is JsonKind.BOOLEAN:
            return self._bool
        if kind is JsonKind.NUMBER:
            return self._int if is_integer_value(value) else self._flt
        return self._str

    def _open(self, value: Any):
        """Start encoding a container: a frame, or the finished type.

        Frames are plain lists ``[is_object, iterator, key parts,
        child types, pending name]`` — anything that is *not* a list is
        an already-canonical result (empty arrays resolve immediately).
        Key parts accumulate the container's shape signature — alternating
        field name / canonical child id for records, child ids for arrays
        — which the close step probes against the shape caches before
        constructing anything.
        """
        if isinstance(value, dict):
            return [True, iter(value.items()), [], [], None]
        if not value:
            return self._empty_arr
        return [False, iter(value), [], [], None]

    def encode(self, value: Any) -> Type:
        """The canonical interned type of ``value``.

        Identical (by object identity) to ``table.intern(type_of(value))``.
        """
        table = self.table
        if table.epoch() is not self._epoch:
            self._rebind()
        scalars = self._scalars
        atom = scalars.get(type(value))
        if atom is None:
            atom = self._scalar_slow(value)
        if atom is not None:
            return atom
        opened = self._open(value)
        if opened.__class__ is not list:
            return opened
        stack = [opened]
        result: Optional[Type] = None
        while stack:
            frame = stack[-1]
            keyparts = frame[2]
            ctypes = frame[3]
            pushed = False
            if frame[0]:
                for name, v in frame[1]:
                    atom = scalars.get(type(v))
                    if atom is None:
                        atom = self._scalar_slow(v)
                        if atom is None:
                            child = self._open(v)
                            if child.__class__ is list:
                                frame[4] = name
                                stack.append(child)
                                pushed = True
                                break
                            keyparts.append(name)
                            keyparts.append(id(child))
                            ctypes.append(child)
                            continue
                    keyparts.append(name)
                    keyparts.append(id(atom))
                    ctypes.append(atom)
                if pushed:
                    continue
                key = tuple(keyparts)
                done = self._rec_cache.get(key)
                if done is None:
                    field_of = table.field_of
                    done = table.rec_of(
                        [field_of(n, t) for n, t in zip(keyparts[0::2], ctypes)]
                    )
                    self._rec_cache[key] = done
            else:
                for v in frame[1]:
                    atom = scalars.get(type(v))
                    if atom is None:
                        atom = self._scalar_slow(v)
                        if atom is None:
                            child = self._open(v)
                            if child.__class__ is list:
                                stack.append(child)
                                pushed = True
                                break
                            keyparts.append(id(child))
                            ctypes.append(child)
                            continue
                    keyparts.append(id(atom))
                    ctypes.append(atom)
                if pushed:
                    continue
                key = tuple(keyparts)
                done = self._arr_cache.get(key)
                if done is None:
                    done = table.arr_of(table.union_of(ctypes))
                    self._arr_cache[key] = done
            stack.pop()
            if stack:
                parent = stack[-1]
                if parent[0]:
                    parent[2].append(parent[4])
                    parent[2].append(id(done))
                    parent[3].append(done)
                    parent[4] = None
                else:
                    parent[2].append(id(done))
                    parent[3].append(done)
            else:
                result = done
        assert result is not None
        return result


_DEFAULT_ENCODER: Optional[TypeEncoder] = None


def type_of_interned(value: Any, table: Optional[InternTable] = None) -> Type:
    """The canonical interned type of ``value`` — ``intern(type_of(value))``
    fused into one probe-first, recursion-free pass.

    With no ``table`` this uses a process-wide encoder bound to the
    global intern table; pass an explicit table to keep workloads
    isolated (a fresh encoder per call — hold a :class:`TypeEncoder`
    yourself for batch work against a private table).
    """
    global _DEFAULT_ENCODER
    if table is None or table is global_table():
        encoder = _DEFAULT_ENCODER
        if encoder is None:
            encoder = _DEFAULT_ENCODER = TypeEncoder(global_table())
        return encoder.encode(value)
    return TypeEncoder(table).encode(value)
