"""Mapping JSON values to their exact types (the *map* phase of inference).

``type_of`` computes the most precise type of a single value in this
algebra: records list every present field as required; arrays abstract
their elements by the union of the element types (the abstraction step the
EDBT '17 paper applies at arrays, since arrays are homogeneous-ish in
practice and element positions are not tracked).

``type_of_interned`` / :class:`TypeEncoder` are the *fused* map phase:
they construct canonical interned terms directly against an
:class:`~repro.types.intern.InternTable` — probe-first, bottom-up, with
an explicit stack instead of recursion — so typing a document the table
has seen the shape of before allocates nothing and never builds the raw
tree that ``intern(type_of(value))`` would throw away.  The composition
law ``type_of_interned(v) is intern(type_of(v))`` is pinned by the
differential property tests in ``tests/test_build_fused_differential.py``.

:class:`EventTypeEncoder` extends the fused map phase to *text*: it
consumes SAX-style parse events (:meth:`EventTypeEncoder.feed_event`) or
raw lexer tokens (:meth:`EventTypeEncoder.encode_text`) and resolves
every closing container through the same record/array shape caches —
no ``JSONValue`` DOM, no per-document frame objects, just bytes to a
canonical interned type.  ``encode_text`` raises exactly the errors the
DOM parser raises (same class, message and offset), so the streaming and
parsing paths fail identically.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional

import re

from repro.errors import InferenceError
from repro.jsonvalue.events import JsonEvent, JsonEventType
from repro.jsonvalue.lexer import Token, TokenType, _Scanner
from repro.jsonvalue.model import JsonKind, is_integer_value, kind_of
from repro.jsonvalue.parser import JsonParseError
from repro.types.intern import InternTable, global_table
from repro.types.simplify import union
from repro.types.terms import (
    ArrType,
    BOOL,
    BOT,
    FLT,
    FieldType,
    INT,
    NULL,
    RecType,
    STR,
    Type,
)


def type_of(value: Any) -> Type:
    """Return the exact type of ``value``.

    - scalars map to their atom (ints to ``Int``, floats to ``Flt``);
    - objects map to a record with every field required;
    - arrays map to ``[T1 + ... + Tn]`` over the element types, with the
      empty array mapping to ``[Bot]``.
    """
    kind = kind_of(value)
    if kind is JsonKind.NULL:
        return NULL
    if kind is JsonKind.BOOLEAN:
        return BOOL
    if kind is JsonKind.NUMBER:
        return INT if is_integer_value(value) else FLT
    if kind is JsonKind.STRING:
        return STR
    if kind is JsonKind.ARRAY:
        if not value:
            return ArrType(BOT)
        return ArrType(union(type_of(v) for v in value))
    # Object.
    return RecType(
        tuple(FieldType(name, type_of(v), required=True) for name, v in value.items())
    )


class TypeEncoder:
    """Fused map phase: one JSON value → its canonical interned type.

    Equivalent to ``table.intern(type_of(value))`` but:

    - **recursion-free** — containers are traversed with an explicit
      frame stack, so arbitrarily deep documents encode without touching
      Python's recursion limit (the seed ``type_of`` cannot);
    - **probe-first** — every node is looked up in the intern table by
      child identity before anything is allocated, so repeated structure
      costs dictionary probes only;
    - **shape-cached** — every closing container is resolved through a
      per-encoder cache keyed on its child signature (field names and
      canonical child identities for records, member identities for
      arrays), so the repeated record shapes that dominate real
      collections skip even the per-field intern probes and the
      field-sort of record construction.

    The shape caches are the *per-batch* caches: private to the encoder
    instance and rebound automatically when the backing table starts a
    new epoch (:meth:`InternTable.clear`), so stale canonical nodes can
    never leak across a clear.
    """

    __slots__ = (
        "table",
        "_epoch",
        "_scalars",
        "_null",
        "_bool",
        "_int",
        "_flt",
        "_str",
        "_empty_arr",
        "_rec_cache",
        "_arr_cache",
    )

    def __init__(self, table: Optional[InternTable] = None) -> None:
        self.table = table if table is not None else global_table()
        self._rebind()

    def _rebind(self) -> None:
        """(Re)acquire canonical leaves for the table's current epoch."""
        table = self.table
        self._epoch = table.epoch()
        self._null = table.intern(NULL)
        self._bool = table.intern(BOOL)
        self._int = table.intern(INT)
        self._flt = table.intern(FLT)
        self._str = table.intern(STR)
        self._empty_arr = table.arr_of(table.intern(BOT))
        # Exact-type scalar dispatch.  type() distinguishes bool from int
        # (bool cannot be subclassed), so this is the whole kind_of chain
        # in one dictionary probe; scalar *subclasses* fall through to
        # _scalar_slow.
        self._scalars = {
            type(None): self._null,
            bool: self._bool,
            int: self._int,
            float: self._flt,
            str: self._str,
        }
        self._rec_cache: dict = {}
        self._arr_cache: dict = {}

    # ------------------------------------------------------------------

    def _scalar_slow(self, value: Any) -> Optional[Type]:
        """Classify values whose exact type missed the dispatch table.

        Returns the canonical atom for scalar subclasses, ``None`` for
        dict/list (subclasses included), and raises the same ``TypeError``
        as :func:`repro.jsonvalue.model.kind_of` for non-JSON values.
        """
        if isinstance(value, (dict, list)):
            return None
        kind = kind_of(value)
        if kind is JsonKind.NULL:
            return self._null
        if kind is JsonKind.BOOLEAN:
            return self._bool
        if kind is JsonKind.NUMBER:
            return self._int if is_integer_value(value) else self._flt
        return self._str

    def _open(self, value: Any):
        """Start encoding a container: a frame, or the finished type.

        Frames are plain lists ``[is_object, iterator, key parts,
        child types, pending name]`` — anything that is *not* a list is
        an already-canonical result (empty arrays resolve immediately).
        Key parts accumulate the container's shape signature — alternating
        field name / canonical child id for records, child ids for arrays
        — which the close step probes against the shape caches before
        constructing anything.
        """
        if isinstance(value, dict):
            return [True, iter(value.items()), [], [], None]
        if not value:
            return self._empty_arr
        return [False, iter(value), [], [], None]

    def encode(self, value: Any) -> Type:
        """The canonical interned type of ``value``.

        Identical (by object identity) to ``table.intern(type_of(value))``.
        """
        table = self.table
        if table.epoch() is not self._epoch:
            self._rebind()
        scalars = self._scalars
        atom = scalars.get(type(value))
        if atom is None:
            atom = self._scalar_slow(value)
        if atom is not None:
            return atom
        opened = self._open(value)
        if opened.__class__ is not list:
            return opened
        stack = [opened]
        result: Optional[Type] = None
        while stack:
            frame = stack[-1]
            keyparts = frame[2]
            ctypes = frame[3]
            pushed = False
            if frame[0]:
                for name, v in frame[1]:
                    atom = scalars.get(type(v))
                    if atom is None:
                        atom = self._scalar_slow(v)
                        if atom is None:
                            child = self._open(v)
                            if child.__class__ is list:
                                frame[4] = name
                                stack.append(child)
                                pushed = True
                                break
                            keyparts.append(name)
                            keyparts.append(id(child))
                            ctypes.append(child)
                            continue
                    keyparts.append(name)
                    keyparts.append(id(atom))
                    ctypes.append(atom)
                if pushed:
                    continue
                key = tuple(keyparts)
                done = self._rec_cache.get(key)
                if done is None:
                    field_of = table.field_of
                    done = table.rec_of(
                        [field_of(n, t) for n, t in zip(keyparts[0::2], ctypes)]
                    )
                    self._rec_cache[key] = done
            else:
                for v in frame[1]:
                    atom = scalars.get(type(v))
                    if atom is None:
                        atom = self._scalar_slow(v)
                        if atom is None:
                            child = self._open(v)
                            if child.__class__ is list:
                                stack.append(child)
                                pushed = True
                                break
                            keyparts.append(id(child))
                            ctypes.append(child)
                            continue
                    keyparts.append(id(atom))
                    ctypes.append(atom)
                if pushed:
                    continue
                key = tuple(keyparts)
                done = self._arr_cache.get(key)
                if done is None:
                    done = table.arr_of(table.union_of(ctypes))
                    self._arr_cache[key] = done
            stack.pop()
            if stack:
                parent = stack[-1]
                if parent[0]:
                    parent[2].append(parent[4])
                    parent[2].append(id(done))
                    parent[3].append(done)
                    parent[4] = None
                else:
                    parent[2].append(id(done))
                    parent[3].append(done)
            else:
                result = done
        assert result is not None
        return result


# Parser phases of the fused text machine (mirrors the DOM parser and
# the event parser: about to read a value / an object key / the
# punctuation following a completed value).  The OR_CLOSE variants are
# the "just opened a container" states where the closing bracket is
# still legal.
_PHASE_VALUE = 0
_PHASE_KEY = 1
_PHASE_AFTER = 2
_PHASE_KEY_OR_CLOSE = 3
_PHASE_VALUE_OR_CLOSE = 4

# A JSON string's body may not contain these unescaped: a backslash
# starts an escape, anything below 0x20 is a control character.  One
# C-speed regex probe decides whether a string needs the lexer's full
# decode (escapes/errors) or nothing at all.
_STRING_SPECIAL = re.compile("[\x00-\x1f\\\\]")

_WS = " \t\n\r"
_DIGITS = "0123456789"
_NUMBER_START = "-0123456789"


class EventTypeEncoder(TypeEncoder):
    """Event- and token-driven fused map phase: text → canonical type.

    Extends :class:`TypeEncoder` with two zero-materialization inputs:

    - :meth:`feed_event` / :meth:`feed` consume the SAX-style events of
      :func:`repro.jsonvalue.events.iter_events` (or any well-formed
      event stream) and build canonical interned types *directly* — no
      DOM value, no per-document frame objects, just list frames of
      ``(shape-signature parts, child types)`` resolved through the
      shared record/array shape caches;
    - :meth:`encode_text` fuses one step further and drives the raw
      lexer itself: one pass from JSON text to the canonical interned
      type, with the exact error behaviour (class, message, offset) of
      the DOM parser under its default options.

    Both paths produce, by object identity, the same node that
    ``table.intern(type_of(parse(text)))`` would — the conformance and
    fuzz suites pin this.  Duplicate object keys follow the parser's
    default last-wins policy.
    """

    __slots__ = ("_stack", "_empty_rec")

    def _rebind(self) -> None:
        super()._rebind()
        table = self.table
        self._empty_rec = table.rec_of([])
        # Open containers of the event-feed path.  Frames are plain
        # lists ``[is_object, keyparts, child types]``: keyparts is the
        # container's shape signature (alternating field name/child id
        # for records, child ids for arrays), exactly the shape-cache
        # key format of TypeEncoder.encode.
        self._stack: list[list] = []

    # ------------------------------------------------------------------
    # shared close steps (shape-cache resolution)
    # ------------------------------------------------------------------

    def _close_record(self, keyparts: list, ctypes: list) -> Type:
        key = tuple(keyparts)
        done = self._rec_cache.get(key)
        if done is None:
            table = self.table
            field_of = table.field_of
            fields: dict = {}
            # Duplicate keys: last wins, matching the DOM parser's
            # default duplicate_keys="last" (dict insertion order keeps
            # the record's shape signature stable either way).
            for name, t in zip(keyparts[0::2], ctypes):
                fields[name] = t
            done = table.rec_of([field_of(n, t) for n, t in fields.items()])
            self._rec_cache[key] = done
        return done

    def _close_array(self, keyparts: list, ctypes: list) -> Type:
        if not ctypes:
            return self._empty_arr
        key = tuple(keyparts)
        done = self._arr_cache.get(key)
        if done is None:
            table = self.table
            done = table.arr_of(table.union_of(ctypes))
            self._arr_cache[key] = done
        return done

    # ------------------------------------------------------------------
    # event-driven feed
    # ------------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Number of containers currently open in the event feed."""
        return len(self._stack)

    def reset(self) -> None:
        """Discard any in-flight event-feed state (after a bad stream)."""
        del self._stack[:]

    def _attach(self, done: Type) -> Optional[Type]:
        """Store a completed child; returns the type when it was a
        whole top-level document."""
        stack = self._stack
        if not stack:
            return done
        frame = stack[-1]
        keyparts = frame[1]
        if frame[0] and len(keyparts) != 2 * len(frame[2]) + 1:
            raise InferenceError("object value without a preceding key event")
        keyparts.append(id(done))
        frame[2].append(done)
        return None

    def feed_event(self, event: JsonEvent) -> Optional[Type]:
        """Absorb one parse event; returns the canonical interned type
        each time a top-level document completes, else ``None``.

        Raises :class:`~repro.errors.InferenceError` on ill-formed event
        streams (key outside an object, unmatched container end, ...);
        streams produced by :func:`repro.jsonvalue.events.iter_events`
        are well-formed by construction.
        """
        etype = event.type
        stack = self._stack
        if etype is JsonEventType.KEY:
            if not stack or not stack[-1][0]:
                raise InferenceError("key event outside an object")
            frame = stack[-1]
            keyparts = frame[1]
            if len(keyparts) != 2 * len(frame[2]):
                raise InferenceError("two key events without a value")
            keyparts.append(event.value)
            return None
        if etype is JsonEventType.VALUE:
            if not stack and self.table.epoch() is not self._epoch:
                self._rebind()
                stack = self._stack
            value = event.value
            atom = self._scalars.get(type(value))
            if atom is None:
                atom = self._scalar_slow(value)
                if atom is None:
                    raise InferenceError(
                        f"VALUE event carrying a container {value!r}"
                    )
            return self._attach(atom)
        if etype is JsonEventType.START_OBJECT or etype is JsonEventType.START_ARRAY:
            if not stack and self.table.epoch() is not self._epoch:
                self._rebind()
                stack = self._stack
            stack.append([etype is JsonEventType.START_OBJECT, [], []])
            return None
        if etype is JsonEventType.END_OBJECT or etype is JsonEventType.END_ARRAY:
            if not stack:
                raise InferenceError("container end without start")
            frame = stack[-1]
            if frame[0] is not (etype is JsonEventType.END_OBJECT):
                raise InferenceError("mismatched container end event")
            stack.pop()
            if frame[0]:
                keyparts = frame[1]
                if len(keyparts) != 2 * len(frame[2]):
                    raise InferenceError("key event without a following value")
                done = self._close_record(keyparts, frame[2])
            else:
                done = self._close_array(frame[1], frame[2])
            return self._attach(done)
        raise InferenceError(f"unknown event {etype!r}")  # pragma: no cover

    def feed(self, events: Iterable[JsonEvent]) -> Iterator[Type]:
        """Yield the canonical type of each top-level document in
        ``events`` (the generator analogue of :meth:`feed_event`)."""
        feed_event = self.feed_event
        for event in events:
            done = feed_event(event)
            if done is not None:
                yield done

    # ------------------------------------------------------------------
    # fused lexer loop: one pass from text to canonical type
    # ------------------------------------------------------------------

    def _fail_at(self, text: str, pos: int, line: int, line_start: int, message: str):
        """Raise the structural error the DOM parser would raise here.

        The parser works token-at-a-time, so its structural errors carry
        the *lexed* offending token — and when that token is itself
        malformed, the lexical error wins.  Reproduce both by lexing the
        offending position with the real scanner.
        """
        scanner = _Scanner(text)
        scanner.pos = pos
        scanner.line = line
        scanner.line_start = line_start
        token = scanner.next_token()  # may raise the (correct) lex error
        raise JsonParseError(message, token)

    def encode_text(self, text: str, *, max_depth: int = 512) -> Type:
        """The canonical interned type of one JSON text.

        Identical (by object identity) to
        ``table.intern(type_of(parse(text)))`` but runs a character-level
        machine over the text: no DOM, no event objects, no token
        objects on the happy path — scalar literals resolve to canonical
        atoms after a validity scan (a string's *content* never matters
        to its type, only that it lexes), closing containers resolve
        through the shape caches.  Anything unusual (escapes, malformed
        literals, structural errors) defers to the real lexer at the
        exact same position, so malformed text raises exactly what
        :func:`repro.jsonvalue.parser.parse` raises under its default
        options: the same :class:`~repro.jsonvalue.parser.JsonParseError`
        / :class:`~repro.jsonvalue.lexer.JsonLexError` class, message
        and offset.
        """
        table = self.table
        if table.epoch() is not self._epoch:
            self._rebind()
        int_atom = self._int
        flt_atom = self._flt
        str_atom = self._str
        bool_atom = self._bool
        null_atom = self._null
        special = _STRING_SPECIAL.search
        find_quote = text.find
        length = len(text)
        pos = 0
        line = 1
        line_start = 0
        scanner: Optional[_Scanner] = None  # lazily built for slow paths
        stack: list[list] = []
        phase = _PHASE_VALUE
        result: Optional[Type] = None
        while True:
            # Inter-token whitespace (tracks line numbers for errors).
            while pos < length:
                ch = text[pos]
                if ch == " " or ch == "\t" or ch == "\r":
                    pos += 1
                elif ch == "\n":
                    pos += 1
                    line += 1
                    line_start = pos
                else:
                    break
            if pos >= length:
                if phase == _PHASE_AFTER and not stack:
                    assert result is not None
                    return result
                eof = Token(
                    TokenType.EOF, None, pos, pos, line, pos - line_start + 1
                )
                if phase == _PHASE_AFTER:
                    raise JsonParseError("expected ',' or closing bracket", eof)
                if phase == _PHASE_KEY or phase == _PHASE_KEY_OR_CLOSE:
                    raise JsonParseError("expected object key string", eof)
                raise JsonParseError("expected a JSON value", eof)

            if phase == _PHASE_VALUE_OR_CLOSE:
                if ch == "]":
                    pos += 1
                    stack.pop()
                    completed = self._empty_arr
                    if stack:
                        frame = stack[-1]
                        frame[1].append(id(completed))
                        frame[2].append(completed)
                    else:
                        result = completed
                    phase = _PHASE_AFTER
                    continue
                phase = _PHASE_VALUE
            elif phase == _PHASE_KEY_OR_CLOSE:
                if ch == "}":
                    pos += 1
                    stack.pop()
                    completed = self._empty_rec
                    if stack:
                        frame = stack[-1]
                        frame[1].append(id(completed))
                        frame[2].append(completed)
                    else:
                        result = completed
                    phase = _PHASE_AFTER
                    continue
                phase = _PHASE_KEY

            if phase == _PHASE_VALUE:
                if ch == '"':
                    end = find_quote('"', pos + 1)
                    if end != -1 and special(text, pos + 1, end) is None:
                        pos = end + 1
                    else:
                        # Escapes, control characters, or unterminated:
                        # the real lexer decodes (or raises) in place.
                        if scanner is None:
                            scanner = _Scanner(text)
                        scanner.pos = pos
                        scanner.line = line
                        scanner.line_start = line_start
                        scanner.scan_string()
                        pos = scanner.pos
                    completed = str_atom
                elif ch in _NUMBER_START:
                    npos = pos
                    ok = True
                    if ch == "-":
                        npos += 1
                        if npos >= length or text[npos] not in _DIGITS:
                            ok = False
                    if ok:
                        if text[npos] == "0":
                            npos += 1
                            if npos < length and text[npos] in _DIGITS:
                                ok = False  # leading zero
                        else:
                            while npos < length and text[npos] in _DIGITS:
                                npos += 1
                    is_float = False
                    if ok and npos < length and text[npos] == ".":
                        is_float = True
                        npos += 1
                        if npos >= length or text[npos] not in _DIGITS:
                            ok = False
                        else:
                            while npos < length and text[npos] in _DIGITS:
                                npos += 1
                    if ok and npos < length and text[npos] in "eE":
                        is_float = True
                        npos += 1
                        if npos < length and text[npos] in "+-":
                            npos += 1
                        if npos >= length or text[npos] not in _DIGITS:
                            ok = False
                        else:
                            while npos < length and text[npos] in _DIGITS:
                                npos += 1
                    if ok:
                        pos = npos
                        completed = flt_atom if is_float else int_atom
                    else:
                        # Anomalous literal: the lexer re-scans in place
                        # and raises the exact message/offset the parser
                        # would (today the fast walk declines only
                        # shapes scan_number rejects; the classification
                        # below is drift insurance, not a live path).
                        if scanner is None:
                            scanner = _Scanner(text)
                        scanner.pos = pos
                        scanner.line = line
                        scanner.line_start = line_start
                        token = scanner.scan_number()
                        pos = scanner.pos
                        completed = (
                            int_atom if token.value.__class__ is int else flt_atom
                        )
                elif ch == "t":
                    if not text.startswith("true", pos):
                        self._fail_at(text, pos, line, line_start, "expected a JSON value")
                    pos += 4
                    completed = bool_atom
                elif ch == "f":
                    if not text.startswith("false", pos):
                        self._fail_at(text, pos, line, line_start, "expected a JSON value")
                    pos += 5
                    completed = bool_atom
                elif ch == "n":
                    if not text.startswith("null", pos):
                        self._fail_at(text, pos, line, line_start, "expected a JSON value")
                    pos += 4
                    completed = null_atom
                elif ch == "{":
                    if len(stack) >= max_depth:
                        raise JsonParseError(
                            f"maximum nesting depth of {max_depth} exceeded",
                            Token(
                                TokenType.LBRACE, None, pos, pos + 1,
                                line, pos - line_start + 1,
                            ),
                        )
                    pos += 1
                    stack.append([True, [], []])
                    phase = _PHASE_KEY_OR_CLOSE
                    continue
                elif ch == "[":
                    if len(stack) >= max_depth:
                        raise JsonParseError(
                            f"maximum nesting depth of {max_depth} exceeded",
                            Token(
                                TokenType.LBRACKET, None, pos, pos + 1,
                                line, pos - line_start + 1,
                            ),
                        )
                    pos += 1
                    stack.append([False, [], []])
                    phase = _PHASE_VALUE_OR_CLOSE
                    continue
                else:
                    self._fail_at(text, pos, line, line_start, "expected a JSON value")
                if stack:
                    frame = stack[-1]
                    frame[1].append(id(completed))
                    frame[2].append(completed)
                else:
                    result = completed
                phase = _PHASE_AFTER
            elif phase == _PHASE_KEY:
                if ch != '"':
                    self._fail_at(
                        text, pos, line, line_start, "expected object key string"
                    )
                end = find_quote('"', pos + 1)
                if end != -1 and special(text, pos + 1, end) is None:
                    name = text[pos + 1 : end]
                    pos = end + 1
                else:
                    if scanner is None:
                        scanner = _Scanner(text)
                    scanner.pos = pos
                    scanner.line = line
                    scanner.line_start = line_start
                    name = scanner.scan_string().value
                    pos = scanner.pos
                stack[-1][1].append(name)
                while pos < length:
                    ch = text[pos]
                    if ch == " " or ch == "\t" or ch == "\r":
                        pos += 1
                    elif ch == "\n":
                        pos += 1
                        line += 1
                        line_start = pos
                    else:
                        break
                if pos >= length or text[pos] != ":":
                    self._fail_at(text, pos, line, line_start, "expected ':'")
                pos += 1
                phase = _PHASE_VALUE
            else:  # _PHASE_AFTER: a value has just been completed.
                if not stack:
                    self._fail_at(
                        text, pos, line, line_start,
                        "trailing data after JSON document",
                    )
                frame = stack[-1]
                if ch == ",":
                    pos += 1
                    phase = _PHASE_KEY if frame[0] else _PHASE_VALUE
                elif ch == "}" and frame[0]:
                    pos += 1
                    stack.pop()
                    completed = self._close_record(frame[1], frame[2])
                    if stack:
                        parent = stack[-1]
                        parent[1].append(id(completed))
                        parent[2].append(completed)
                    else:
                        result = completed
                elif ch == "]" and not frame[0]:
                    pos += 1
                    stack.pop()
                    completed = self._close_array(frame[1], frame[2])
                    if stack:
                        parent = stack[-1]
                        parent[1].append(id(completed))
                        parent[2].append(completed)
                    else:
                        result = completed
                else:
                    self._fail_at(
                        text, pos, line, line_start,
                        "expected ',' or closing bracket",
                    )


_DEFAULT_ENCODER: Optional[TypeEncoder] = None


def type_of_interned(value: Any, table: Optional[InternTable] = None) -> Type:
    """The canonical interned type of ``value`` — ``intern(type_of(value))``
    fused into one probe-first, recursion-free pass.

    With no ``table`` this uses a process-wide encoder bound to the
    global intern table; pass an explicit table to keep workloads
    isolated (a fresh encoder per call — hold a :class:`TypeEncoder`
    yourself for batch work against a private table).
    """
    global _DEFAULT_ENCODER
    if table is None or table is global_table():
        encoder = _DEFAULT_ENCODER
        if encoder is None:
            encoder = _DEFAULT_ENCODER = TypeEncoder(global_table())
        return encoder.encode(value)
    return TypeEncoder(table).encode(value)
