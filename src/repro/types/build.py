"""Mapping JSON values to their exact types (the *map* phase of inference).

``type_of`` computes the most precise type of a single value in this
algebra: records list every present field as required; arrays abstract
their elements by the union of the element types (the abstraction step the
EDBT '17 paper applies at arrays, since arrays are homogeneous-ish in
practice and element positions are not tracked).
"""

from __future__ import annotations

from typing import Any

from repro.jsonvalue.model import JsonKind, is_integer_value, kind_of
from repro.types.simplify import union
from repro.types.terms import (
    ArrType,
    BOOL,
    BOT,
    FLT,
    FieldType,
    INT,
    NULL,
    RecType,
    STR,
    Type,
)


def type_of(value: Any) -> Type:
    """Return the exact type of ``value``.

    - scalars map to their atom (ints to ``Int``, floats to ``Flt``);
    - objects map to a record with every field required;
    - arrays map to ``[T1 + ... + Tn]`` over the element types, with the
      empty array mapping to ``[Bot]``.
    """
    kind = kind_of(value)
    if kind is JsonKind.NULL:
        return NULL
    if kind is JsonKind.BOOLEAN:
        return BOOL
    if kind is JsonKind.NUMBER:
        return INT if is_integer_value(value) else FLT
    if kind is JsonKind.STRING:
        return STR
    if kind is JsonKind.ARRAY:
        if not value:
            return ArrType(BOT)
        return ArrType(union(type_of(v) for v in value))
    # Object.
    return RecType(
        tuple(FieldType(name, type_of(v), required=True) for name, v in value.items())
    )
