"""Type terms of the internal JSON type algebra.

This is the type language of the tutorial's Part 4 (schema inference),
modelled on Baazizi, Colazzo, Ghelli & Sartiani (EDBT '17 / VLDB J '19):

- atomic types ``Null``, ``Bool``, ``Int``, ``Flt``, ``Num``, ``Str``
  (``Num`` is the join of ``Int`` and ``Flt``);
- record types ``{l1: T1, l2?: T2, ...}`` with per-field optionality;
- array types ``[T]`` abstracting every element by one item type;
- union types ``T1 + T2 + ...``;
- ``Bot`` (the empty type, identity for union) and ``Any`` (the top type).

All terms are immutable, hashable dataclasses with a canonical form
(:func:`repro.types.simplify.simplify` flattens and sorts unions), so they
can key dictionaries in merge trees and be compared structurally in tests.

Equality and hashing are hand-written rather than dataclass-generated so
that the hash-consed kernel (:mod:`repro.types.intern`) gets fast paths:

- ``t == t`` short-circuits on identity before any recursion;
- two *interned* terms of the same table are equal iff identical, so a
  deep compare between canonical terms is O(1);
- hashes and ``size()`` are computed once and cached on the instance
  (terms are immutable, so the caches can never go stale).

Structural equality between non-interned terms is unchanged from the
dataclass semantics the seed had.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional, Tuple

from repro.errors import InferenceError


class Type:
    """Base class of every type term (not instantiable itself)."""

    __slots__ = ()

    # Instance attributes shadow these class-level defaults lazily:
    # ``_interned`` is set (to the owning intern table's *epoch token*)
    # by :class:`repro.types.intern.InternTable`; ``_hash`` and
    # ``_size`` cache the first computation.  ``_normal`` marks terms
    # known to be in simplify-normal form — a *structural* property, so
    # unlike the intern mark it stays valid across table epochs and
    # pickling; :func:`repro.types.simplify.simplify` returns marked
    # terms unchanged in O(1).
    _interned: Optional[object] = None
    _hash: Optional[int] = None
    _size: Optional[int] = None
    _normal: bool = False

    def size(self) -> int:
        """Number of AST nodes — the *succinctness* measure of EDBT '17."""
        cached = self._size
        if cached is None:
            cached = self._compute_size()
            object.__setattr__(self, "_size", cached)
        return cached

    def _compute_size(self) -> int:
        return 1 + sum(child.size() for child in self.children())

    def __getstate__(self) -> dict:
        # Drop intern marks and caches: pickled copies (e.g. types shipped
        # back from multiprocessing workers) must rehydrate as plain
        # structural terms, not drag a whole intern table along.
        state = dict(self.__dict__)
        state.pop("_interned", None)
        state.pop("_hash", None)
        state.pop("_size", None)
        return state

    def children(self) -> Iterator["Type"]:
        """Yield direct sub-terms."""
        return iter(())

    def sort_key(self) -> tuple:
        """Total order over terms used to canonicalize union member order."""
        raise NotImplementedError

    def __str__(self) -> str:
        from repro.types.printer import type_to_string

        return type_to_string(self)


@dataclass(frozen=True, repr=False)
class BotType(Type):
    """The empty type ⊥: matches no value; identity for union."""

    def sort_key(self) -> tuple:
        return (0,)

    def __repr__(self) -> str:
        return "BOT"


@dataclass(frozen=True, repr=False)
class AnyType(Type):
    """The top type ⊤: matches every value."""

    def sort_key(self) -> tuple:
        return (9,)

    def __repr__(self) -> str:
        return "ANY"


# Atomic tags in join order: int/flt are refinements of num.
ATOMIC_TAGS = ("null", "bool", "int", "flt", "num", "str")
_ATOM_RANK = {tag: i for i, tag in enumerate(ATOMIC_TAGS)}


@dataclass(frozen=True, repr=False, eq=False)
class AtomType(Type):
    """An atomic type: ``null``, ``bool``, ``int``, ``flt``, ``num`` or ``str``.

    ``num`` abstracts both ``int`` and ``flt``; the kind-equivalence merge
    produces it when integers and floats meet at the same position.
    """

    tag: str

    def __post_init__(self) -> None:
        if self.tag not in _ATOM_RANK:
            raise InferenceError(f"unknown atomic tag {self.tag!r}")

    @property
    def kind(self) -> str:
        """The JSON kind this atom belongs to (int/flt/num are 'number')."""
        return "number" if self.tag in ("int", "flt", "num") else self.tag

    def sort_key(self) -> tuple:
        return (1, _ATOM_RANK[self.tag])

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not AtomType:
            return NotImplemented
        return self.tag == other.tag

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash(("atom", self.tag))
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:
        return self.tag.capitalize()


# Leaves have no substructure to canonicalize: every instance is already
# in simplify-normal form.
BotType._normal = True
AnyType._normal = True
AtomType._normal = True


# Shared singleton-ish instances (dataclass equality makes these optional,
# but the names read better at call sites).
BOT = BotType()
ANY = AnyType()
NULL = AtomType("null")
BOOL = AtomType("bool")
INT = AtomType("int")
FLT = AtomType("flt")
NUM = AtomType("num")
STR = AtomType("str")


def _interned_distinct(left: Type, right: Type) -> bool:
    """True when both terms are canonical in the same intern epoch.

    Canonical terms of one table epoch are structurally equal iff
    identical, so when this holds (and ``left is not right``) the deep
    compare can be skipped entirely.  The mark is the table's epoch
    token, not the table itself: ``InternTable.clear()`` starts a new
    epoch, so terms surviving a clear can never falsely alias terms
    interned afterwards.
    """
    token = left._interned
    return token is not None and token is right._interned


@dataclass(frozen=True, repr=False, eq=False)
class ArrType(Type):
    """Array type ``[T]``: every element matches item type ``T``.

    The empty array has type ``[Bot]`` — ``Bot`` never matches a value, and
    an array with no elements vacuously satisfies it.
    """

    item: Type

    def children(self) -> Iterator[Type]:
        yield self.item

    def sort_key(self) -> tuple:
        return (2, self.item.sort_key())

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not ArrType:
            return NotImplemented
        if _interned_distinct(self, other):
            return False
        return self.item == other.item

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash(("arr", self.item))
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:
        return f"Arr({self.item!r})"


@dataclass(frozen=True, repr=False, eq=False)
class FieldType(Type):
    """One record member: name, value type, and a required flag.

    Optional fields (``required=False``) arise from merging records where
    the field is present in only some of them — printed as ``name?: T``.
    """

    name: str
    type: Type
    required: bool = True

    def children(self) -> Iterator[Type]:
        yield self.type

    def sort_key(self) -> tuple:
        return (0, self.name, self.required, self.type.sort_key())

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not FieldType:
            return NotImplemented
        if _interned_distinct(self, other):
            return False
        return (
            self.name == other.name
            and self.required == other.required
            and self.type == other.type
        )

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash(("field", self.name, self.required, self.type))
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:
        mark = "" if self.required else "?"
        return f"{self.name}{mark}: {self.type!r}"


@dataclass(frozen=True, repr=False, eq=False)
class RecType(Type):
    """Record type ``{l1: T1, l2?: T2}``.

    Fields are stored sorted by name, making structurally equal records
    compare equal regardless of construction order.  Unknown extra fields
    are *not* permitted by a record type (closed records), matching the
    inference papers' semantics.
    """

    fields: Tuple[FieldType, ...]

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if names != sorted(names):
            object.__setattr__(
                self, "fields", tuple(sorted(self.fields, key=lambda f: f.name))
            )
        if len({f.name for f in self.fields}) != len(self.fields):
            raise ValueError("duplicate field names in record type")

    @classmethod
    def of(cls, mapping: Mapping[str, Type], optional: frozenset[str] = frozenset()) -> "RecType":
        """Build a record from a name→type mapping plus a set of optional names."""
        return cls(
            tuple(
                FieldType(name, t, required=name not in optional)
                for name, t in mapping.items()
            )
        )

    def field_map(self) -> dict[str, FieldType]:
        return {f.name: f for f in self.fields}

    def labels(self) -> frozenset[str]:
        return frozenset(f.name for f in self.fields)

    def required_labels(self) -> frozenset[str]:
        return frozenset(f.name for f in self.fields if f.required)

    def children(self) -> Iterator[Type]:
        return iter(self.fields)

    def _compute_size(self) -> int:
        # A field contributes its name node plus its type's size.
        return 1 + sum(1 + f.type.size() for f in self.fields)

    def sort_key(self) -> tuple:
        return (3, tuple(f.sort_key() for f in self.fields))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not RecType:
            return NotImplemented
        if _interned_distinct(self, other):
            return False
        return self.fields == other.fields

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash(("rec", self.fields))
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:
        return "Rec(" + ", ".join(repr(f) for f in self.fields) + ")"


@dataclass(frozen=True, repr=False, eq=False)
class UnionType(Type):
    """Union type ``T1 + T2 + ...``.

    Use :func:`repro.types.simplify.union` to construct unions — it
    flattens nested unions, removes ``Bot`` and duplicates, and sorts
    members canonically.  The constructor itself only freezes what it is
    given (needed so ``simplify`` can build the canonical form).
    """

    members: Tuple[Type, ...] = field(default=())

    def children(self) -> Iterator[Type]:
        return iter(self.members)

    def sort_key(self) -> tuple:
        return (4, tuple(m.sort_key() for m in self.members))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not UnionType:
            return NotImplemented
        if _interned_distinct(self, other):
            return False
        return self.members == other.members

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash(("union", self.members))
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:
        return "Union(" + ", ".join(repr(m) for m in self.members) + ")"


def walk(t: Type) -> Iterator[Type]:
    """Yield ``t`` and every sub-term, pre-order."""
    stack = [t]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(list(current.children())))


def is_atomic(t: Type) -> bool:
    return isinstance(t, AtomType)


def atom_for_kind_join(left: AtomType, right: AtomType) -> Optional[AtomType]:
    """Join two atoms of the same JSON kind, or None if kinds differ.

    ``int`` ∨ ``flt`` = ``num``; joining any number atom with ``num`` gives
    ``num``; identical atoms join to themselves.
    """
    if left.tag == right.tag:
        return left
    if left.kind == right.kind == "number":
        return NUM
    return None
