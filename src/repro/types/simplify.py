"""Canonicalization of type terms: union construction and simplification.

``union`` is the only sanctioned way to build :class:`UnionType` values:
it flattens nested unions, drops ``Bot``, deduplicates, collapses
``int + flt + num`` interactions (anything unioned with ``num`` of the same
kind is absorbed), sorts members canonically, and unwraps singletons.

``simplify`` applies the same canonicalization recursively to an arbitrary
term, giving every type a unique normal form — the property the merge-law
tests (associativity/commutativity/idempotence) rely on.
"""

from __future__ import annotations

from typing import Iterable

from repro.types.terms import (
    ANY,
    AnyType,
    ArrType,
    AtomType,
    BOT,
    BotType,
    FieldType,
    NUM,
    RecType,
    Type,
    UnionType,
)


def union(members: Iterable[Type]) -> Type:
    """Build the canonical union of ``members``.

    Returns ``Bot`` for the empty union and the sole member for singletons,
    so the result is only a :class:`UnionType` when at least two distinct
    members remain.
    """
    flat: list[Type] = []
    seen: set[Type] = set()
    any_present = False
    all_normal = True

    def add(t: Type) -> None:
        nonlocal any_present, all_normal
        if isinstance(t, UnionType):
            for m in t.members:
                add(m)
        elif isinstance(t, BotType):
            return
        elif isinstance(t, AnyType):
            any_present = True
        else:
            if not t._normal:
                all_normal = False
            if t not in seen:
                seen.add(t)
                flat.append(t)

    for member in members:
        add(member)

    if any_present:
        return ANY

    # num absorbs int and flt.
    if NUM in seen:
        flat = [t for t in flat if not (isinstance(t, AtomType) and t.tag in ("int", "flt"))]

    if not flat:
        return BOT
    if len(flat) == 1:
        return flat[0]
    flat.sort(key=lambda t: t.sort_key())
    out = UnionType(tuple(flat))
    if all_normal:
        # Flattened, deduplicated, absorbed and sorted over members that
        # are themselves normal: the union is its own simplified form.
        object.__setattr__(out, "_normal", True)
    return out


def simplify(t: Type) -> Type:
    """Recursively canonicalize ``t`` (idempotent).

    Terms carrying the normal-form mark (every output of this function,
    plus everything the intern table records as a canonical fixpoint)
    return unchanged in O(1), so re-simplifying results the fused
    pipeline already canonicalized never re-walks the structure.
    """
    if t._normal:
        return t
    if isinstance(t, UnionType):
        return union(simplify(m) for m in t.members)
    if isinstance(t, ArrType):
        out: Type = ArrType(simplify(t.item))
    elif isinstance(t, RecType):
        out = RecType(tuple(_simplify_field(f) for f in t.fields))
    elif isinstance(t, FieldType):
        out = _simplify_field(t)
    else:
        return t
    object.__setattr__(out, "_normal", True)
    return out


def _simplify_field(f: FieldType) -> FieldType:
    out = FieldType(f.name, simplify(f.type), f.required)
    object.__setattr__(out, "_normal", True)
    return out


def union2(left: Type, right: Type) -> Type:
    """Binary union convenience."""
    return union((left, right))
