"""Canonicalization of type terms: union construction and simplification.

``union`` is the only sanctioned way to build :class:`UnionType` values:
it flattens nested unions, drops ``Bot``, deduplicates, collapses
``int + flt + num`` interactions (anything unioned with ``num`` of the same
kind is absorbed), sorts members canonically, and unwraps singletons.

``simplify`` applies the same canonicalization recursively to an arbitrary
term, giving every type a unique normal form — the property the merge-law
tests (associativity/commutativity/idempotence) rely on.
"""

from __future__ import annotations

from typing import Iterable

from repro.types.terms import (
    ANY,
    AnyType,
    ArrType,
    AtomType,
    BOT,
    BotType,
    FieldType,
    NUM,
    RecType,
    Type,
    UnionType,
)


def union(members: Iterable[Type]) -> Type:
    """Build the canonical union of ``members``.

    Returns ``Bot`` for the empty union and the sole member for singletons,
    so the result is only a :class:`UnionType` when at least two distinct
    members remain.
    """
    flat: list[Type] = []
    seen: set[Type] = set()
    any_present = False

    def add(t: Type) -> None:
        nonlocal any_present
        if isinstance(t, UnionType):
            for m in t.members:
                add(m)
        elif isinstance(t, BotType):
            return
        elif isinstance(t, AnyType):
            any_present = True
        elif t not in seen:
            seen.add(t)
            flat.append(t)

    for member in members:
        add(member)

    if any_present:
        return ANY

    # num absorbs int and flt.
    if NUM in seen:
        flat = [t for t in flat if not (isinstance(t, AtomType) and t.tag in ("int", "flt"))]

    if not flat:
        return BOT
    if len(flat) == 1:
        return flat[0]
    flat.sort(key=lambda t: t.sort_key())
    return UnionType(tuple(flat))


def simplify(t: Type) -> Type:
    """Recursively canonicalize ``t`` (idempotent)."""
    if isinstance(t, UnionType):
        return union(simplify(m) for m in t.members)
    if isinstance(t, ArrType):
        return ArrType(simplify(t.item))
    if isinstance(t, RecType):
        return RecType(
            tuple(
                FieldType(f.name, simplify(f.type), f.required)
                for f in t.fields
            )
        )
    if isinstance(t, FieldType):
        return FieldType(t.name, simplify(t.type), t.required)
    return t


def union2(left: Type, right: Type) -> Type:
    """Binary union convenience."""
    return union((left, right))
