"""Schema-aware data translation pipelines (tutorial §5, experiment E9).

"When input datasets are heterogeneous, schemas can improve the efficiency
and the effectiveness of data format conversion."  This module implements
both sides of that comparison:

- **schema-aware**: infer a type for the collection (parametric K-merge),
  *resolve* it to a translation-friendly schema (:func:`resolve_type` —
  unions widened to nullable leaves or a JSON-text escape hatch), then
  shred to the Parquet-like columnar format or encode Avro-like rows;
- **schema-oblivious**: no schema — each document is stored as one JSON
  text blob (a single string column / NDJSON bytes), which is what a tool
  must do when it cannot rely on structure.

The report compares output sizes; the benchmark adds timing.  Quality is
measured too: the fraction of leaf values that kept a typed column rather
than falling back to the ``json`` escape-hatch column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional

from repro.errors import TranslationError
from repro.jsonvalue.serializer import dumps
from repro.types import Equivalence, Type, merge_all, type_of
from repro.types.terms import (
    ArrType,
    AtomType,
    BotType,
    FieldType,
    NUM,
    RecType,
    UnionType,
)
from repro.translation import avro
from repro.translation.parquet import (
    ColumnStore,
    compile_schema,
    shred,
)


def resolve_type(t: Type) -> tuple[Type, list[str]]:
    """Rewrite ``t`` into a Parquet-representable type.

    Returns the resolved type and the list of **fallback paths**: leaf
    positions (named like shredded column paths, ``a.[].b``) where a union
    could not be widened and the subtree degrades to a JSON text leaf.
    Fewer fallbacks = higher translation quality; schema precision is what
    keeps this number down.
    """
    fallbacks: list[str] = []

    def resolve(node: Type, path: str) -> Type:
        if isinstance(node, AtomType):
            return node
        if isinstance(node, ArrType):
            return ArrType(resolve(node.item, f"{path}.[]" if path else "[]"))
        if isinstance(node, RecType):
            return RecType(
                tuple(
                    FieldType(
                        f.name,
                        resolve(f.type, f"{path}.{f.name}" if path else f.name),
                        f.required,
                    )
                    for f in node.fields
                )
            )
        if isinstance(node, UnionType):
            members = list(node.members)
            nulls = [m for m in members if isinstance(m, AtomType) and m.tag == "null"]
            rest = [m for m in members if m not in nulls]
            if nulls and len(rest) == 1 and isinstance(rest[0], AtomType):
                return node  # nullable leaf, representable as-is
            tags = {m.tag for m in members if isinstance(m, AtomType)}
            if tags == {"int", "flt"} and len(members) == 2:
                return NUM
            fallbacks.append(path)
            return _JSON_TEXT
        if isinstance(node, BotType):
            return node
        raise TranslationError(f"cannot resolve {node!r}")

    return resolve(t, ""), fallbacks


# Marker atom: subtree stored as serialized JSON text.
_JSON_TEXT = AtomType("str")


def _textify(value: Any, resolved: Type, original: Type) -> Any:
    """Serialize subtrees that were resolved to the JSON-text fallback."""
    if resolved is _JSON_TEXT and original is not _JSON_TEXT:
        return dumps(value)
    if isinstance(resolved, ArrType) and isinstance(value, list):
        assert isinstance(original, ArrType)
        return [_textify(v, resolved.item, original.item) for v in value]
    if isinstance(resolved, RecType) and isinstance(value, dict):
        assert isinstance(original, RecType)
        original_fields = original.field_map()
        resolved_fields = resolved.field_map()
        return {
            name: _textify(
                v, resolved_fields[name].type, original_fields[name].type
            )
            for name, v in value.items()
        }
    return value


@dataclass
class TranslationReport:
    """Outcome of one schema-aware translation."""

    document_count: int
    columnar: ColumnStore
    avro_rows: list
    fallback_count: int
    typed_leaf_columns: int
    json_leaf_columns: int
    input_bytes: int

    @property
    def columnar_bytes(self) -> int:
        return self.columnar.total_encoded_size()

    @property
    def avro_bytes(self) -> int:
        return sum(len(r) for r in self.avro_rows)

    @property
    def typed_fraction(self) -> float:
        total = self.typed_leaf_columns + self.json_leaf_columns
        return self.typed_leaf_columns / total if total else 1.0


def schema_aware_translate(
    documents: Iterable[Any],
    inferred: Optional[Type] = None,
    *,
    equivalence: Equivalence = Equivalence.KIND,
) -> TranslationReport:
    """Translate a collection using an (optionally provided) schema."""
    docs = list(documents)
    if inferred is None:
        inferred = merge_all((type_of(d) for d in docs), equivalence)
    resolved, fallback_paths = resolve_type(inferred)

    # _JSON_TEXT is a distinct AtomType("str") *instance*; make subtree
    # serialization decisions by identity where the resolver degraded.
    prepared = [_textify(d, resolved, inferred) for d in docs]

    parquet_schema = compile_schema(resolved)
    store = shred(prepared, parquet_schema)
    # Re-kind the escape-hatch columns so accounting can tell real strings
    # from serialized-JSON fallbacks.
    for path in fallback_paths:
        if path in store.columns:
            store.columns[path].kind = "json"

    avro_schema = avro.from_algebra(resolved)
    rows = avro.encode_rows(avro_schema, prepared)

    typed = sum(1 for c in store.columns.values() if c.kind != "json")
    json_cols = len(store.columns) - typed
    input_bytes = sum(len(dumps(d).encode("utf-8")) for d in docs)
    return TranslationReport(
        document_count=len(docs),
        columnar=store,
        avro_rows=rows,
        fallback_count=len(fallback_paths),
        typed_leaf_columns=typed,
        json_leaf_columns=json_cols,
        input_bytes=input_bytes,
    )


@dataclass
class ObliviousReport:
    """The no-schema baseline: documents stay JSON text."""

    document_count: int
    blobs: list

    @property
    def total_bytes(self) -> int:
        return sum(len(b) for b in self.blobs)


def schema_oblivious_translate(documents: Iterable[Any]) -> ObliviousReport:
    """Store each document as a JSON text blob (no structure exploited)."""
    blobs = [dumps(d).encode("utf-8") for d in documents]
    return ObliviousReport(document_count=len(blobs), blobs=blobs)
