"""Schema-aware data translation pipelines (tutorial §5, experiment E9).

"When input datasets are heterogeneous, schemas can improve the efficiency
and the effectiveness of data format conversion."  This module implements
both sides of that comparison:

- **schema-aware**: infer a type for the collection, *resolve* it to a
  translation-friendly schema (:func:`resolve_interned` — unions widened
  to nullable leaves, nullable records, or a JSON-text escape hatch),
  then shred to the Parquet-like columnar format and encode Avro-like
  rows;
- **schema-oblivious**: no schema — each document is stored as one JSON
  text blob (a single string column / NDJSON bytes), which is what a tool
  must do when it cannot rely on structure.

Two translation paths produce the artifacts, pinned byte-identical by the
translation conformance tier:

- :func:`schema_aware_translate` — the DOM reference: materialise the
  documents, seed-merge a type when none is given, textify, ``shred``,
  ``encode_rows``;
- :func:`translate_interned` / :func:`translate_report_path` — the
  interned pipeline: subtree resolution and Avro/Parquet schema
  compilation memoized on interned node identity (shared subtrees
  translate once, keyed to the intern-table epoch like the subtype
  checker), documents streamed once through a :class:`~repro.translation.
  parquet.Shredder` and a fused :class:`~repro.translation.avro.
  RowEncoder`.  ``translate_report_path`` runs the whole
  infer→translate→write flow single-pass from a file: mmap/compressed
  corpus → bytes fold → resolved schema → Avro rows + columnar store.

Union resolution is carried by an explicit :class:`Resolution` — the
resolved type, the degraded column paths, and a structural
:class:`TextifyPlan` deciding which subtrees serialize to JSON text.
(The seed used a sentinel ``AtomType("str")`` *instance* and decided by
object identity, which silently broke as soon as the resolved type was
re-interned or crossed a pickle boundary; the plan survives both.)

The report compares output sizes; the benchmark (E21) adds timing.
Quality is measured too: the fraction of leaf values that kept a typed
column rather than falling back to the ``json`` escape-hatch column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional

from repro.errors import TranslationError
from repro.jsonvalue.serializer import dumps
from repro.types import Equivalence, Type, merge_all, type_of
from repro.types.intern import EpochMemo, InternTable, global_table
from repro.types.terms import (
    ArrType,
    AtomType,
    BotType,
    RecType,
    UnionType,
)
from repro.translation import avro
from repro.translation.parquet import (
    ColumnStore,
    PNode,
    Shredder,
    compile_schema,
    shred,
)


# ---------------------------------------------------------------------------
# textify plans: which subtrees degrade to serialized JSON text
# ---------------------------------------------------------------------------


class TextifyPlan:
    """Structural decision tree over a resolved type.

    One node per position that *matters*: ``CLEAN`` subtrees (no fallback
    anywhere beneath) pass values through untouched — the common case,
    and the reason textify costs nothing on homogeneous corpora —
    ``FALLBACK`` positions serialize the value, and container plans
    descend.  Plans are plain frozen data: they pickle, and they carry no
    object-identity protocol, so a plan built in one process drives
    translation in another.
    """

    __slots__ = ()


@dataclass(frozen=True)
class _Clean(TextifyPlan):
    pass


@dataclass(frozen=True)
class _Fallback(TextifyPlan):
    pass


@dataclass(frozen=True)
class ArrPlan(TextifyPlan):
    item: TextifyPlan


@dataclass(frozen=True)
class RecPlan(TextifyPlan):
    children: dict  # name -> non-clean child plan
    labels: frozenset  # every field name the schema knows


CLEAN = _Clean()
FALLBACK = _Fallback()


def textify(value: Any, plan: TextifyPlan, path: str = "") -> Any:
    """Serialize the subtrees ``plan`` marks as JSON-text fallbacks.

    Values under a ``CLEAN`` plan are returned *as-is* (no copy); a
    document whose schema resolved without fallbacks is returned
    unchanged.  A record field the schema has never seen raises
    :class:`TranslationError` naming the offending path.
    """
    cls = plan.__class__
    if cls is _Clean:
        return value
    if cls is _Fallback:
        return dumps(value)
    if cls is ArrPlan:
        if not isinstance(value, list):
            return value
        item_plan = plan.item
        child = f"{path}.[]" if path else "[]"
        return [textify(v, item_plan, child) for v in value]
    # RecPlan.  None passes through: a nullable record's plan is the
    # record's own plan, applied only when a record is actually present.
    if not isinstance(value, dict):
        return value
    children = plan.children
    labels = plan.labels
    out = {}
    for name, v in value.items():
        sub = children.get(name)
        if sub is not None:
            out[name] = textify(v, sub, f"{path}.{name}" if path else name)
        elif name in labels:
            out[name] = v
        else:
            where = f"{path}.{name}" if path else name
            raise TranslationError(
                f"document field {where!r} is not in the schema"
            )
    return out


# ---------------------------------------------------------------------------
# union resolution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Resolution:
    """The outcome of resolving a type for translation.

    ``resolved`` is Parquet/Avro-representable; ``fallbacks`` are the
    column paths (``a.[].b`` style) where a union could not be widened
    and the subtree degrades to JSON text; ``plan`` drives
    :func:`textify`.  The whole object pickles and survives re-interning
    — nothing here depends on instance identity.
    """

    resolved: Type
    fallbacks: tuple
    plan: TextifyPlan

    def textify(self, value: Any) -> Any:
        return textify(value, self.plan)


# Per-node resolution memo: id(canonical node) -> (resolved, relative
# fallback suffixes, plan).  Suffixes are recorded *relative* to the node
# (() = the node itself) because the same subtree appears at many
# absolute paths; parents prepend their segment.
_RESOLVE_MEMO = EpochMemo()
_PARQUET_MEMO = EpochMemo()
_AVRO_MEMO = EpochMemo()


def _join(segment: str, suffixes: tuple) -> list:
    # Suffixes stay *segment tuples* until resolve_interned renders the
    # dotted strings: a string join can't tell "the node itself" from a
    # field literally named "" (whose column is "parent." — hypothesis
    # found the collision), a tuple prepend can.
    return [(segment,) + s for s in suffixes]


def _resolve_node(node: Type, table: InternTable, memo: dict):
    key = id(node)
    hit = memo.get(key)
    if hit is not None:
        return hit
    out = _resolve_fresh(node, table, memo)
    memo[key] = out
    return out


def _resolve_fresh(node: Type, table: InternTable, memo: dict):
    cls = node.__class__
    if cls is AtomType or cls is BotType:
        return node, (), CLEAN
    if cls is ArrType:
        item, suffixes, item_plan = _resolve_node(node.item, table, memo)
        resolved = node if item is node.item else table.arr_of(item)
        if not suffixes:
            return resolved, (), CLEAN
        return resolved, tuple(_join("[]", suffixes)), ArrPlan(item_plan)
    if cls is RecType:
        changed = False
        fields = []
        suffixes: list = []
        children: dict = {}
        for f in node.fields:
            ftype, fsuf, fplan = _resolve_node(f.type, table, memo)
            if ftype is f.type:
                fields.append(f)
            else:
                changed = True
                fields.append(table.field_of(f.name, ftype, f.required))
            if fsuf:
                suffixes.extend(_join(f.name, fsuf))
                children[f.name] = fplan
        resolved = table.rec_of(fields) if changed else node
        if not children:
            return resolved, (), CLEAN
        plan = RecPlan(children, frozenset(f.name for f in node.fields))
        return resolved, tuple(suffixes), plan
    if cls is UnionType:
        members = node.members
        nulls = [
            m for m in members if m.__class__ is AtomType and m.tag == "null"
        ]
        rest = [
            m
            for m in members
            if not (m.__class__ is AtomType and m.tag == "null")
        ]
        if nulls and len(rest) == 1 and rest[0].__class__ is AtomType:
            return node, (), CLEAN  # nullable leaf, representable as-is
        if rest and all(
            m.__class__ is AtomType and m.tag in ("int", "flt", "num")
            for m in rest
        ):
            # Numeric drift (int|flt, int|flt|null, …) widens to num —
            # nullable when null rides along — instead of degrading.
            resolved = table.atom("num")
            if nulls:
                resolved = table.union_of([table.atom("null"), resolved])
            return resolved, (), CLEAN
        if nulls and len(rest) == 1 and rest[0].__class__ is RecType:
            # The common optional-object shape null | {…}: resolve as a
            # nullable record so its leaves stay typed columns.
            inner, suffixes, plan = _resolve_node(rest[0], table, memo)
            resolved = table.union_of([table.atom("null"), inner])
            return resolved, suffixes, plan
        return table.atom("str"), ((),), FALLBACK
    raise TranslationError(f"cannot resolve {node!r}")


def resolve_interned(
    t: Type, *, table: Optional[InternTable] = None
) -> Resolution:
    """Resolve ``t`` into a translation-friendly :class:`Resolution`.

    The input is canonicalized into ``table`` (the global intern table by
    default) and resolution is memoized on interned node identity, keyed
    to the table's epoch: a subtree shared by a thousand positions
    resolves once.
    """
    if table is None:
        table = global_table()
    node = table.canonical(t)
    memo = _RESOLVE_MEMO.map_for(table)
    resolved, suffixes, plan = _resolve_node(node, table, memo)
    return Resolution(
        resolved=resolved,
        fallbacks=tuple(".".join(s) for s in suffixes),
        plan=plan,
    )


def resolve_type(t: Type) -> tuple[Type, list[str]]:
    """Rewrite ``t`` into a Parquet-representable type.

    Returns the resolved type and the list of **fallback paths**: leaf
    positions (named like shredded column paths, ``a.[].b``) where a union
    could not be widened and the subtree degrades to a JSON text leaf.
    Fewer fallbacks = higher translation quality; schema precision is what
    keeps this number down.  (Compatibility wrapper over
    :func:`resolve_interned`.)
    """
    resolution = resolve_interned(t)
    return resolution.resolved, list(resolution.fallbacks)


def compiled_parquet(
    resolved: Type, *, table: Optional[InternTable] = None
) -> PNode:
    """``compile_schema`` memoized on interned node identity."""
    if table is None:
        table = global_table()
    return compile_schema(resolved, _PARQUET_MEMO.map_for(table))


def compiled_avro(
    resolved: Type, *, table: Optional[InternTable] = None
) -> avro.AvroSchema:
    """``avro.from_algebra`` memoized on interned node identity."""
    if table is None:
        table = global_table()
    return avro.from_algebra(resolved, "Root", _AVRO_MEMO.map_for(table))


# ---------------------------------------------------------------------------
# reports
# ---------------------------------------------------------------------------


@dataclass
class TranslationReport:
    """Outcome of one schema-aware translation.

    ``avro_rows`` is ``None`` when the rows were spilled to disk during
    translation (``translate_report_path(..., out=...)``): the encoded
    bytes already live in ``rows.avro`` and only their size
    (``row_bytes``) is retained, keeping peak memory O(columns + one
    row).
    """

    document_count: int
    columnar: ColumnStore
    avro_rows: Optional[list]
    fallback_count: int
    typed_leaf_columns: int
    json_leaf_columns: int
    input_bytes: int
    row_bytes: Optional[int] = None

    @property
    def columnar_bytes(self) -> int:
        return self.columnar.total_encoded_size()

    @property
    def avro_bytes(self) -> int:
        if self.avro_rows is not None:
            return sum(len(r) for r in self.avro_rows)
        return self.row_bytes or 0

    @property
    def typed_fraction(self) -> float:
        total = self.typed_leaf_columns + self.json_leaf_columns
        return self.typed_leaf_columns / total if total else 1.0


def _relabel_fallbacks(store: ColumnStore, fallbacks: Iterable[str]) -> None:
    """Re-kind the escape-hatch columns so accounting can tell real
    strings from serialized-JSON fallbacks.

    Strict: every fallback path resolves to a string leaf at exactly that
    position, so a missing column (the root path included) is a resolver/
    shredder disagreement, not something to skip silently.
    """
    for path in fallbacks:
        column = store.columns.get(path)
        if column is None:
            raise TranslationError(
                f"fallback path {path!r} has no shredded column"
            )
        column.kind = "json"


def _build_report(
    store: ColumnStore,
    rows: Optional[list],
    fallbacks: tuple,
    document_count: int,
    input_bytes: int,
    row_bytes: Optional[int] = None,
) -> TranslationReport:
    _relabel_fallbacks(store, fallbacks)
    typed = sum(1 for c in store.columns.values() if c.kind != "json")
    return TranslationReport(
        document_count=document_count,
        columnar=store,
        avro_rows=rows,
        fallback_count=len(fallbacks),
        typed_leaf_columns=typed,
        json_leaf_columns=len(store.columns) - typed,
        input_bytes=input_bytes,
        row_bytes=row_bytes,
    )


# ---------------------------------------------------------------------------
# the DOM reference path
# ---------------------------------------------------------------------------


def schema_aware_translate(
    documents: Iterable[Any],
    inferred: Optional[Type] = None,
    *,
    equivalence: Equivalence = Equivalence.KIND,
) -> TranslationReport:
    """Translate a collection using an (optionally provided) schema.

    The DOM reference path: documents are materialised, the schema is
    seed-merged when none is given, and the artifacts are produced by the
    batch ``shred``/``encode_rows`` primitives.  The interned pipeline
    (:func:`translate_interned`) must match its output byte for byte.
    """
    docs = list(documents)
    if inferred is None:
        inferred = merge_all((type_of(d) for d in docs), equivalence)
    resolution = resolve_interned(inferred)

    prepared = [resolution.textify(d) for d in docs]
    store = shred(prepared, compile_schema(resolution.resolved))
    rows = avro.encode_rows(avro.from_algebra(resolution.resolved), prepared)
    input_bytes = sum(len(dumps(d).encode("utf-8")) for d in docs)
    return _build_report(
        store, rows, resolution.fallbacks, len(docs), input_bytes
    )


# ---------------------------------------------------------------------------
# the interned pipeline
# ---------------------------------------------------------------------------


def translate_interned(
    documents: Iterable[Any],
    inferred: Optional[Type] = None,
    *,
    equivalence: Equivalence = Equivalence.KIND,
    table: Optional[InternTable] = None,
    input_bytes: Optional[int] = None,
) -> TranslationReport:
    """Translate on interned types: memoized resolution and schema
    compilation, one streaming pass over the documents.

    Byte-identical artifacts to :func:`schema_aware_translate` (the
    conformance tier's gate), reached differently: resolution and the
    compiled Avro/Parquet schemas are epoch-keyed memo hits after the
    first collection with a shared shape, and each document flows
    through the shredder and the fused row encoder without building a
    prepared-documents list.  ``input_bytes`` (when the caller already
    knows the source size, e.g. raw corpus bytes) skips the per-document
    re-serialization the report otherwise needs.
    """
    if table is None:
        table = global_table()
    if inferred is None:
        from repro.inference.engine import TypeAccumulator

        documents = list(documents)
        if documents:
            accumulator = TypeAccumulator(equivalence, table=table)
            for doc in documents:
                accumulator.add(doc)
            inferred = accumulator.result()
        else:
            inferred = merge_all((), equivalence)
    resolution = resolve_interned(inferred, table=table)

    shredder = Shredder(compiled_parquet(resolution.resolved, table=table))
    encoder = avro.RowEncoder(compiled_avro(resolution.resolved, table=table))
    plan = resolution.plan
    rows: list = []
    count = 0
    measured = 0
    measure = input_bytes is None
    for doc in documents:
        count += 1
        if measure:
            measured += len(dumps(doc).encode("utf-8"))
        prepared = textify(doc, plan)
        shredder.add(prepared)
        rows.append(encoder.encode_row(prepared))
    return _build_report(
        shredder.finish(),
        rows,
        resolution.fallbacks,
        count,
        measured if measure else input_bytes,
    )


@dataclass
class TranslationRun:
    """A single-pass infer→translate run over a corpus source.

    ``artifacts`` is the path→bytes map of what landed on disk when the
    run spilled its artifacts (``translate_report_path(out=...)``);
    ``None`` for purely in-memory runs (use :func:`write_artifacts`).
    """

    translation: TranslationReport
    inferred: Type
    resolved: Type
    equivalence: Equivalence
    artifacts: Optional[dict] = None


class _RowSink:
    """Row accumulator: an in-memory list, or an incremental spill to
    the length-prefixed ``rows.avro`` framing.

    The spill keeps translation memory O(columns + one row): each
    encoded row is framed and written immediately, and only byte
    counters are retained.  The list stays for the library-API return
    path (``TranslationReport.avro_rows``).
    """

    __slots__ = ("rows", "row_bytes", "framed_bytes", "_handle", "_frame")

    def __init__(self, rows_path=None):
        if rows_path is None:
            self.rows: Optional[list] = []
            self._handle = None
        else:
            self.rows = None
            self._handle = open(rows_path, "wb")
        self.row_bytes = 0
        self.framed_bytes = 0
        self._frame = bytearray()

    def add(self, row: bytes) -> None:
        handle = self._handle
        if handle is None:
            self.rows.append(row)
            return
        frame = self._frame
        frame.clear()
        avro._write_long(frame, len(row))
        frame += row
        handle.write(frame)
        self.row_bytes += len(row)
        self.framed_bytes += len(frame)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def translate_report_path(
    source,
    equivalence: Equivalence = Equivalence.KIND,
    *,
    jobs: Optional[int] = 1,
    shared_memory="auto",
    table: Optional[InternTable] = None,
    engine: str = "stream",
    out=None,
) -> TranslationRun:
    """The single-pass infer→translate→write flow from a corpus source.

    ``source`` is a file path (plain, gzip, or zstd — detected by magic
    bytes), ``"-"`` for stdin, or a line iterable.  The schema comes
    from the bytes fold, resolution and schema compilation are
    interned-memoized, and each document translates in one streaming
    loop.  Two engines, byte-identical on the artifacts they share:

    - ``"stream"`` (default): the DOM-free machine
      (:class:`repro.translation.stream.StreamTranslator`) walks each
      document's raw byte span and emits column entries and Avro row
      bytes directly; non-conforming documents delegate per-document to
      the DOM path.  Sources without byte spans (stdin, line iterables)
      fall back to the DOM loop automatically, as does any resolved
      schema the column program cannot express.  Fallback (JSON-text)
      columns capture the **raw source slice verbatim**, where the DOM
      engine re-serialises — identical on serializer-canonical corpora.
    - ``"interned"``: the PR 8 DOM loop — speculative decode, textify,
      shredder + fused row encoder.

    ``out`` (a directory) spills artifacts while translating: encoded
    rows stream straight into ``rows.avro`` (peak memory O(columns + one
    row), ``TranslationReport.avro_rows`` is then ``None``), and
    ``columns.json``/``schema.txt`` land at the end; the written map is
    on ``TranslationRun.artifacts``.  Without ``out``, pair with
    :func:`write_artifacts`.
    """
    import os

    from repro.inference.streaming import report_with_lines, report_with_spans

    if engine not in ("stream", "interned"):
        raise TranslationError(
            f"unknown translate engine {engine!r}; expected 'stream' or 'interned'"
        )
    if table is None:
        table = global_table()
    is_file = (
        isinstance(source, (str, os.PathLike))
        and str(source) != "-"
        and os.path.isfile(source)
    )
    rows_path = None
    if out is not None:
        os.makedirs(out, exist_ok=True)
        rows_path = os.path.join(out, "rows.avro")
    sink = _RowSink(rows_path)
    try:
        if engine == "stream" and is_file:
            with report_with_spans(
                source, equivalence, jobs=jobs, shared_memory=shared_memory
            ) as (report, sections):
                inferred = table.canonical(report.inferred)
                resolution = resolve_interned(inferred, table=table)
                shredder = Shredder(
                    compiled_parquet(resolution.resolved, table=table)
                )
                encoder = avro.RowEncoder(
                    compiled_avro(resolution.resolved, table=table)
                )
                count, input_bytes = _stream_translate_sections(
                    sections, resolution, shredder, encoder, sink
                )
        else:
            with report_with_lines(
                source, equivalence, jobs=jobs, shared_memory=shared_memory
            ) as (report, lines):
                inferred = table.canonical(report.inferred)
                resolution = resolve_interned(inferred, table=table)
                shredder = Shredder(
                    compiled_parquet(resolution.resolved, table=table)
                )
                encoder = avro.RowEncoder(
                    compiled_avro(resolution.resolved, table=table)
                )
                count, input_bytes = _dom_translate_lines(
                    lines, resolution, shredder, encoder, sink
                )
        if count != report.document_count:
            raise TranslationError(
                f"translate pass saw {count} documents, "
                f"inference saw {report.document_count}"
            )
    finally:
        sink.close()
    translation = _build_report(
        shredder.finish(),
        sink.rows,
        resolution.fallbacks,
        count,
        input_bytes,
        row_bytes=sink.row_bytes if sink.rows is None else None,
    )
    run = TranslationRun(
        translation=translation,
        inferred=inferred,
        resolved=resolution.resolved,
        equivalence=equivalence,
    )
    if out is not None:
        written = {rows_path: sink.framed_bytes}
        written.update(_write_columns_and_schema(run, out))
        run.artifacts = written
    return run


def _dom_translate_lines(lines, resolution, shredder, encoder, sink):
    """The DOM loop: decoded lines through speculative decode + textify.

    On the constant-structure streams this flow targets, the Fad.js-
    style speculative decoder turns most lines into a single template
    match (result-identical to the generic parser, which it falls back
    to — with its exact errors — on any miss).
    """
    from repro.parsing.fadjs import SpeculativeDecoder

    decoder = SpeculativeDecoder()
    plan = resolution.plan
    add = sink.add
    count = 0
    input_bytes = 0
    for line in lines:
        if not line or line.isspace():
            continue
        input_bytes += len(line.encode("utf-8"))
        prepared = textify(decoder.decode(line), plan)
        shredder.add(prepared)
        add(encoder.encode_row(prepared))
        count += 1
    return count, input_bytes


def _stream_translate_sections(sections, resolution, shredder, encoder, sink):
    """The DOM-free loop: raw byte spans through the stream machine.

    Blank spans are skipped with the byte folds' exact whitespace rule
    (ASCII run first; a leading high or vertical-space byte decides by
    ``str.isspace`` on the decoded line, decode errors raising exactly),
    so the document count always reconciles with inference.
    """
    from repro.inference.engine import _BYTES_WS_RUN, _EXTRA_SPACE_BYTES
    from repro.translation.stream import StreamTranslator

    translator = StreamTranslator(resolution, shredder, encoder)
    translate = translator.translate_range
    ws_match = _BYTES_WS_RUN.match
    add = sink.add
    count = 0
    input_bytes = 0
    for data, spans in sections:
        for start, end in spans:
            if end <= start:
                continue
            ws_end = ws_match(data, start, end).end()
            if ws_end >= end:
                continue  # ASCII whitespace only
            if data[ws_end] >= 0x80 or data[ws_end] in _EXTRA_SPACE_BYTES:
                if bytes(data[start:end]).decode("utf-8").isspace():
                    continue
            input_bytes += end - start
            add(translate(data, start, end))
            count += 1
    return count, input_bytes


# ---------------------------------------------------------------------------
# artifacts
# ---------------------------------------------------------------------------


def column_store_json(store: ColumnStore) -> str:
    """A canonical JSON rendering of a column store.

    Deterministic (columns in path order), so two stores are equal iff
    their renderings are byte-identical — the conformance tier compares
    the DOM and interned paths through it, and :func:`write_artifacts`
    writes it.
    """
    return dumps(
        {
            "row_count": store.row_count,
            "columns": [
                {
                    "path": column.path,
                    "kind": column.kind,
                    "max_repetition": column.max_repetition,
                    "max_definition": column.max_definition,
                    "repetition_levels": column.repetition_levels,
                    "definition_levels": column.definition_levels,
                    "values": column.values,
                }
                for _, column in sorted(store.columns.items())
            ],
        }
    )


def write_artifacts(run: TranslationRun, out_dir) -> dict:
    """Write the run's artifacts under ``out_dir``; returns path→bytes.

    - ``rows.avro`` — the encoded rows, each prefixed with its byte
      length as an Avro long (the block framing of the object container
      format, without its header — the schema travels in
      ``schema.txt``);
    - ``columns.json`` — the columnar store (:func:`column_store_json`);
    - ``schema.txt`` — inferred type, resolved type, and Avro schema.

    Runs that already spilled their rows (``translate_report_path(out=
    ...)``) have ``avro_rows is None`` — their artifacts are on disk
    (see ``TranslationRun.artifacts``) and re-writing here would have
    nothing to frame.
    """
    import os

    report = run.translation
    if report.avro_rows is None:
        raise TranslationError(
            "this run spilled its rows during translation "
            "(translate_report_path(out=...)); artifacts are already "
            "on disk — see TranslationRun.artifacts"
        )
    os.makedirs(out_dir, exist_ok=True)
    written = {}

    rows_path = os.path.join(out_dir, "rows.avro")
    framed = bytearray()
    for row in report.avro_rows:
        avro._write_long(framed, len(row))
        framed.extend(row)
    with open(rows_path, "wb") as handle:
        handle.write(framed)
    written[rows_path] = len(framed)

    written.update(_write_columns_and_schema(run, out_dir))
    return written


def _write_columns_and_schema(run: TranslationRun, out_dir) -> dict:
    """The row-independent artifacts, shared by both write paths."""
    import os

    from repro.types import type_to_string

    os.makedirs(out_dir, exist_ok=True)
    written = {}

    columns_path = os.path.join(out_dir, "columns.json")
    columns_text = column_store_json(run.translation.columnar) + "\n"
    with open(columns_path, "w", encoding="utf-8") as handle:
        handle.write(columns_text)
    written[columns_path] = len(columns_text.encode("utf-8"))

    schema_path = os.path.join(out_dir, "schema.txt")
    schema_text = (
        f"equivalence: {run.equivalence.value}\n"
        f"inferred: {type_to_string(run.inferred)}\n"
        f"resolved: {type_to_string(run.resolved)}\n"
        f"avro: {avro.from_algebra(run.resolved)}\n"
    )
    with open(schema_path, "w", encoding="utf-8") as handle:
        handle.write(schema_text)
    written[schema_path] = len(schema_text.encode("utf-8"))
    return written


# ---------------------------------------------------------------------------
# the no-schema baseline
# ---------------------------------------------------------------------------


@dataclass
class ObliviousReport:
    """The no-schema baseline: documents stay JSON text."""

    document_count: int
    blobs: list

    @property
    def total_bytes(self) -> int:
        return sum(len(b) for b in self.blobs)


def schema_oblivious_translate(documents: Iterable[Any]) -> ObliviousReport:
    """Store each document as a JSON text blob (no structure exploited)."""
    blobs = [dumps(d).encode("utf-8") for d in documents]
    return ObliviousReport(document_count=len(blobs), blobs=blobs)
