"""An Avro-like schema model and binary row codec (tutorial §5).

"While JSON is very frequently used for exchanging and publishing data, it
is hardly used as internal data format in Big Data management tools, that,
instead, usually rely on formats like Avro and Parquet."  The schema-aware
translation experiment (E9) needs a real row format on the other side, so
this module implements the Avro wire encoding from scratch:

- ``long`` — zig-zag varint (Avro's integer encoding);
- ``double`` — 8-byte IEEE 754 little-endian;
- ``string`` — varint byte length + UTF-8;
- ``boolean`` — one byte; ``null`` — zero bytes;
- ``record`` — field values in declared order, no tags (schema-resolved);
- ``array`` — non-empty count blocks terminated by a zero block;
- ``union`` — zig-zag branch index + encoded branch;
- ``map`` — blocks of key/value pairs, zero-terminated.

``decode(schema, encode(schema, v)) == v`` is property-tested.  The point
the benchmark makes: with a schema, a JSON object becomes a compact,
tagless byte row; without one you are stuck shipping the text.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Iterable, Optional, Tuple

from repro.errors import TranslationError
from repro.jsonvalue.model import is_integer_value

PRIMITIVES = ("null", "boolean", "long", "double", "string")


class AvroSchema:
    """Base class of Avro-like schema nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class APrimitive(AvroSchema):
    name: str

    def __post_init__(self) -> None:
        if self.name not in PRIMITIVES:
            raise TranslationError(f"unknown Avro primitive {self.name!r}")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class AField(AvroSchema):
    name: str
    type: AvroSchema

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}: {self.type}"


@dataclass(frozen=True)
class ARecord(AvroSchema):
    name: str
    fields: Tuple[AField, ...]

    def __str__(self) -> str:
        inner = ", ".join(str(f) for f in self.fields)
        return f"record {self.name} {{{inner}}}"


@dataclass(frozen=True)
class AArray(AvroSchema):
    items: AvroSchema

    def __str__(self) -> str:
        return f"array<{self.items}>"


@dataclass(frozen=True)
class AUnion(AvroSchema):
    branches: Tuple[AvroSchema, ...]

    def __post_init__(self) -> None:
        if not self.branches:
            raise TranslationError("Avro unions need at least one branch")

    def __str__(self) -> str:
        return "union[" + ", ".join(str(b) for b in self.branches) + "]"


@dataclass(frozen=True)
class AMap(AvroSchema):
    values: AvroSchema

    def __str__(self) -> str:
        return f"map<{self.values}>"


NULL = APrimitive("null")
BOOLEAN = APrimitive("boolean")
LONG = APrimitive("long")
DOUBLE = APrimitive("double")
STRING = APrimitive("string")


# ---------------------------------------------------------------------------
# wire encoding
# ---------------------------------------------------------------------------


def _zigzag(n: int) -> int:
    # Python ints are unbounded, so use the sign split rather than the
    # fixed-width shift trick.
    return (n << 1) if n >= 0 else (((-n) << 1) - 1)


def _unzigzag(z: int) -> int:
    return (z >> 1) ^ -(z & 1)


def _write_varint(out: bytearray, z: int) -> None:
    while True:
        byte = z & 0x7F
        z >>= 7
        if z:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _write_long(out: bytearray, n: int) -> None:
    _write_varint(out, _zigzag(n))


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def read_varint(self) -> int:
        shift = 0
        result = 0
        while True:
            if self.pos >= len(self.data):
                raise TranslationError("truncated Avro data (varint)")
            byte = self.data[self.pos]
            self.pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7

    def read_long(self) -> int:
        return _unzigzag(self.read_varint())

    def read_bytes(self, count: int) -> bytes:
        if self.pos + count > len(self.data):
            raise TranslationError("truncated Avro data (bytes)")
        chunk = self.data[self.pos : self.pos + count]
        self.pos += count
        return chunk


def encode(schema: AvroSchema, value: Any) -> bytes:
    """Encode one value under ``schema``; raises on schema mismatch."""
    out = bytearray()
    _encode(schema, value, out)
    return bytes(out)


def _encode(schema: AvroSchema, value: Any, out: bytearray) -> None:
    if isinstance(schema, APrimitive):
        name = schema.name
        if name == "null":
            if value is not None:
                raise TranslationError(f"expected null, got {value!r}")
            return
        if name == "boolean":
            if not isinstance(value, bool):
                raise TranslationError(f"expected boolean, got {value!r}")
            out.append(1 if value else 0)
            return
        if name == "long":
            if not is_integer_value(value):
                raise TranslationError(f"expected long, got {value!r}")
            _write_long(out, value)
            return
        if name == "double":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TranslationError(f"expected double, got {value!r}")
            out.extend(struct.pack("<d", float(value)))
            return
        # string
        if not isinstance(value, str):
            raise TranslationError(f"expected string, got {value!r}")
        raw = value.encode("utf-8")
        _write_long(out, len(raw))
        out.extend(raw)
        return
    if isinstance(schema, ARecord):
        if not isinstance(value, dict):
            raise TranslationError(f"expected record {schema.name}, got {value!r}")
        for field in schema.fields:
            if field.name not in value:
                raise TranslationError(
                    f"record {schema.name} is missing field {field.name!r}"
                )
            _encode(field.type, value[field.name], out)
        return
    if isinstance(schema, AArray):
        if not isinstance(value, list):
            raise TranslationError(f"expected array, got {value!r}")
        if value:
            _write_long(out, len(value))
            for item in value:
                _encode(schema.items, item, out)
        _write_long(out, 0)
        return
    if isinstance(schema, AMap):
        if not isinstance(value, dict):
            raise TranslationError(f"expected map, got {value!r}")
        if value:
            _write_long(out, len(value))
            for key, item in value.items():
                raw = key.encode("utf-8")
                _write_long(out, len(raw))
                out.extend(raw)
                _encode(schema.values, item, out)
        _write_long(out, 0)
        return
    if isinstance(schema, AUnion):
        # Two-pass pick.  First an *exact* branch (every record field
        # present, numbers by their own kind), so roundtrips are
        # lossless whenever a lossless branch exists; then the lenient
        # fallback where an int may ride a double branch (the fused
        # ``Num`` idiom).  Field presence is required in both passes —
        # the record encoder below never fills gaps.
        for index, branch in enumerate(schema.branches):
            if _accepts(branch, value, strict=True, exact_numbers=True):
                _write_long(out, index)
                _encode(branch, value, out)
                return
        for index, branch in enumerate(schema.branches):
            if _accepts(branch, value, strict=True):
                _write_long(out, index)
                _encode(branch, value, out)
                return
        raise TranslationError(f"no union branch accepts {value!r}")
    raise TranslationError(f"cannot encode with schema node {schema!r}")


def _accepts(
    schema: AvroSchema,
    value: Any,
    strict: bool = False,
    exact_numbers: bool = False,
) -> bool:
    """Fully recursive membership test, used to pick union branches.

    ``strict`` requires every record field to be *present* (at every
    depth) — what :func:`encode` needs when picking a union branch,
    since its record encoder does not fill gaps.  The default, lenient
    mode additionally admits documents whose missing fields are
    nullable — what :func:`_fill_missing` needs to pick the branch it
    is about to fill.  ``exact_numbers`` makes ``double`` accept only
    floats, so :func:`encode` can prefer a lossless branch before
    falling back to the int-as-double idiom.
    """
    if isinstance(schema, APrimitive):
        if schema.name == "null":
            return value is None
        if schema.name == "boolean":
            return isinstance(value, bool)
        if schema.name == "long":
            return is_integer_value(value)
        if schema.name == "double":
            if exact_numbers:
                return isinstance(value, float)
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        return isinstance(value, str)
    if isinstance(schema, ARecord):
        if not isinstance(value, dict):
            return False
        names = {f.name for f in schema.fields}
        if not set(value.keys()) <= names:
            return False
        for f in schema.fields:
            if f.name in value:
                if not _accepts(f.type, value[f.name], strict, exact_numbers):
                    return False
            elif strict or not _accepts(f.type, None):
                return False  # missing (strict) / non-nullable field
        return True
    if isinstance(schema, AMap):
        return isinstance(value, dict) and all(
            isinstance(k, str) and _accepts(schema.values, v, strict, exact_numbers)
            for k, v in value.items()
        )
    if isinstance(schema, AArray):
        return isinstance(value, list) and all(
            _accepts(schema.items, v, strict, exact_numbers) for v in value
        )
    if isinstance(schema, AUnion):
        return any(_accepts(b, value, strict, exact_numbers) for b in schema.branches)
    return False


def decode(schema: AvroSchema, data: bytes) -> Any:
    """Decode one value; raises on trailing bytes."""
    reader = _Reader(data)
    value = _decode(schema, reader)
    if reader.pos != len(data):
        raise TranslationError(
            f"{len(data) - reader.pos} trailing bytes after Avro value"
        )
    return value


def _decode(schema: AvroSchema, reader: _Reader) -> Any:
    if isinstance(schema, APrimitive):
        name = schema.name
        if name == "null":
            return None
        if name == "boolean":
            byte = reader.read_bytes(1)[0]
            if byte not in (0, 1):
                raise TranslationError(f"invalid boolean byte {byte}")
            return byte == 1
        if name == "long":
            return reader.read_long()
        if name == "double":
            return struct.unpack("<d", reader.read_bytes(8))[0]
        length = reader.read_long()
        return reader.read_bytes(length).decode("utf-8")
    if isinstance(schema, ARecord):
        return {f.name: _decode(f.type, reader) for f in schema.fields}
    if isinstance(schema, AArray):
        out = []
        while True:
            count = reader.read_long()
            if count == 0:
                return out
            if count < 0:  # block with byte size (writers may emit); unsupported
                raise TranslationError("negative array block counts are not supported")
            for _ in range(count):
                out.append(_decode(schema.items, reader))
    if isinstance(schema, AMap):
        out_map: dict[str, Any] = {}
        while True:
            count = reader.read_long()
            if count == 0:
                return out_map
            if count < 0:
                raise TranslationError("negative map block counts are not supported")
            for _ in range(count):
                key_length = reader.read_long()
                key = reader.read_bytes(key_length).decode("utf-8")
                out_map[key] = _decode(schema.values, reader)
    if isinstance(schema, AUnion):
        index = reader.read_long()
        if not 0 <= index < len(schema.branches):
            raise TranslationError(f"union branch {index} out of range")
        return _decode(schema.branches[index], reader)
    raise TranslationError(f"cannot decode with schema node {schema!r}")


# ---------------------------------------------------------------------------
# from the inference algebra
# ---------------------------------------------------------------------------


def from_algebra(
    t: "Type", name: str = "Root", memo: "dict | None" = None  # noqa: F821
) -> AvroSchema:
    """Translate an inferred type into an Avro-like schema.

    Optional record fields become ``union[null, T]`` with a ``null``
    default convention — the standard Avro idiom for JSON optionality.

    ``memo`` (id-of-node → schema) lets callers holding canonical
    interned types translate each shared subtree once.  Record *names*
    are documentation only — they are never written to the wire — so a
    memoized subtree keeps the name of the first position that reached
    it; encoded rows are byte-identical either way.
    """
    if memo is not None:
        hit = memo.get(id(t))
        if hit is not None:
            return hit
    out = _from_algebra(t, name, memo)
    if memo is not None:
        memo[id(t)] = out
    return out


def _from_algebra(t: "Type", name: str, memo: "dict | None") -> AvroSchema:  # noqa: F821
    from repro.types.terms import (
        AnyType,
        ArrType,
        AtomType,
        BotType,
        RecType,
        UnionType,
    )

    if isinstance(t, AtomType):
        return {
            "null": NULL,
            "bool": BOOLEAN,
            "int": LONG,
            "flt": DOUBLE,
            "num": DOUBLE,
            "str": STRING,
        }[t.tag]
    if isinstance(t, ArrType):
        if isinstance(t.item, BotType):
            return AArray(NULL)
        return AArray(from_algebra(t.item, name + "_item", memo))
    if isinstance(t, RecType):
        fields = []
        for f in t.fields:
            ftype = from_algebra(f.type, f"{name}_{f.name}", memo)
            if not f.required:
                branches = (
                    ftype.branches if isinstance(ftype, AUnion) else (ftype,)
                )
                if NULL not in branches:
                    ftype = AUnion((NULL,) + branches)
            fields.append(AField(f.name, ftype))
        return ARecord(name, tuple(fields))
    if isinstance(t, UnionType):
        return AUnion(
            tuple(
                from_algebra(m, f"{name}_{i}", memo)
                for i, m in enumerate(t.members)
            )
        )
    if isinstance(t, AnyType):
        raise TranslationError("Any cannot be represented in Avro")
    if isinstance(t, BotType):
        raise TranslationError("Bot cannot be represented in Avro")
    raise TranslationError(f"cannot translate {t!r} to Avro")


def encode_rows(schema: AvroSchema, documents: Iterable[Any]) -> list[bytes]:
    """Encode a collection, one byte row per document.

    Optional fields absent from a document are treated as ``null`` (the
    union idiom from :func:`from_algebra`).
    """
    rows = []
    for doc in documents:
        rows.append(encode(schema, _fill_missing(schema, doc)))
    return rows


class RowEncoder:
    """Single-walk document→row encoder for resolved-schema unions.

    ``encode_rows`` walks every document three times per union position:
    once in :func:`_fill_missing` to pick a branch and copy the document
    with absent optional fields filled, then twice more inside
    :func:`encode` for the strict/lenient branch passes.  The schemas
    the translation resolver produces only ever contain two-branch
    ``union[null, T]`` nodes, where the branch index is decided by
    ``value is None`` alone — this encoder fuses the fill into the walk
    and emits straight to the output buffer, no copies, no recursive
    branch probes.

    On schema-conforming documents the rows are **byte-identical** to
    ``encode(schema, _fill_missing(schema, doc))`` — the translation
    conformance tier pins this against the reference path.  Exotic union
    shapes (more than two branches, non-null first branch) defer to the
    reference fill+encode for that subtree, so the encoder is total; a
    non-conforming document still raises :class:`TranslationError`,
    though possibly naming the offending leaf rather than the union.
    """

    __slots__ = ("schema",)

    def __init__(self, schema: AvroSchema) -> None:
        self.schema = schema

    def encode_row(self, value: Any) -> bytes:
        out = bytearray()
        self._emit(self.schema, value, out)
        return bytes(out)

    def encode_rows(self, documents: Iterable[Any]) -> list:
        return [self.encode_row(doc) for doc in documents]

    def _emit(self, schema: AvroSchema, value: Any, out: bytearray) -> None:
        cls = schema.__class__
        if cls is ARecord:
            if not isinstance(value, dict):
                raise TranslationError(
                    f"expected record {schema.name}, got {value!r}"
                )
            for field in schema.fields:
                ftype = field.type
                if field.name in value:
                    self._emit(ftype, value[field.name], out)
                elif ftype.__class__ is AUnion and _is_optional_union(ftype):
                    _write_long(out, 0)  # the null branch of union[null, T]
                elif ftype.__class__ is APrimitive and ftype.name == "null":
                    pass  # null encodes to zero bytes
                elif _accepts(ftype, None):
                    _encode(ftype, _fill_missing(ftype, None), out)
                else:
                    raise TranslationError(
                        f"document is missing required field {field.name!r}"
                    )
            return
        if cls is AUnion:
            if _is_optional_union(schema):
                if value is None:
                    _write_long(out, 0)
                else:
                    _write_long(out, 1)
                    self._emit(schema.branches[1], value, out)
                return
            _encode(schema, _fill_missing(schema, value), out)
            return
        if cls is AArray:
            if not isinstance(value, list):
                raise TranslationError(f"expected array, got {value!r}")
            if value:
                _write_long(out, len(value))
                for item in value:
                    self._emit(schema.items, item, out)
            _write_long(out, 0)
            return
        # Primitives encode directly; maps (never produced by
        # from_algebra over resolved types) take the reference path.
        if cls is APrimitive:
            _encode(schema, value, out)
            return
        _encode(schema, _fill_missing(schema, value), out)


def _is_optional_union(schema: AUnion) -> bool:
    """Is this the resolver's ``union[null, T]`` shape?  (T non-null,
    non-union — the branch index is then decided by ``value is None``.)"""
    branches = schema.branches
    return (
        len(branches) == 2
        and branches[0] == NULL
        and branches[1] != NULL
        and branches[1].__class__ is not AUnion
    )


def _fill_missing(schema: AvroSchema, value: Any) -> Any:
    if isinstance(schema, ARecord) and isinstance(value, dict):
        filled = {}
        for field in schema.fields:
            if field.name in value:
                filled[field.name] = _fill_missing(field.type, value[field.name])
            elif _accepts(field.type, None):
                filled[field.name] = None
            else:
                raise TranslationError(
                    f"document is missing required field {field.name!r}"
                )
        return filled
    if isinstance(schema, AArray) and isinstance(value, list):
        return [_fill_missing(schema.items, v) for v in value]
    if isinstance(schema, AUnion):
        for branch in schema.branches:
            if _accepts(branch, value):
                return _fill_missing(branch, value)
    return value


def missing_field_bytes(schema: AvroSchema) -> Optional[bytes]:
    """The exact bytes :meth:`RowEncoder._emit` writes for an *absent*
    record field of type ``schema``, or ``None`` when absence raises
    (a missing required field).

    The stream translate machine precompiles these per field at program
    build time, so an absent optional field costs one buffer append at
    translate time instead of re-deciding the cascade per document.
    """
    if schema.__class__ is AUnion and _is_optional_union(schema):
        return b"\x00"  # zigzag(0): the null branch of union[null, T]
    if schema.__class__ is APrimitive and schema.name == "null":
        return b""  # null encodes to zero bytes
    if _accepts(schema, None):
        out = bytearray()
        _encode(schema, _fill_missing(schema, None), out)
        return bytes(out)
    return None
