"""Schema-aware data translation (tutorial §5).

- :mod:`repro.translation.avro` — Avro-like schemas and binary row codec;
- :mod:`repro.translation.parquet` — Parquet-like columnar shredding with
  definition/repetition levels (Dremel);
- :mod:`repro.translation.translate` — schema-aware vs schema-oblivious
  translation pipelines (experiment E9).
"""

from repro.translation import avro
from repro.translation.parquet import (
    Column,
    ColumnStore,
    PLeaf,
    PList,
    PRecord,
    assemble,
    compile_schema,
    shred,
)
from repro.translation.translate import (
    ObliviousReport,
    TranslationReport,
    resolve_type,
    schema_aware_translate,
    schema_oblivious_translate,
)

__all__ = [
    "avro",
    "Column",
    "ColumnStore",
    "PLeaf",
    "PList",
    "PRecord",
    "assemble",
    "compile_schema",
    "shred",
    "ObliviousReport",
    "TranslationReport",
    "resolve_type",
    "schema_aware_translate",
    "schema_oblivious_translate",
]
