"""Schema-aware data translation (tutorial §5).

- :mod:`repro.translation.avro` — Avro-like schemas and binary row codec
  (batch ``encode``/``encode_rows`` plus the fused :class:`~repro.
  translation.avro.RowEncoder`);
- :mod:`repro.translation.parquet` — Parquet-like columnar shredding with
  definition/repetition levels (Dremel), batch ``shred`` plus the
  streaming :class:`~repro.translation.parquet.Shredder`;
- :mod:`repro.translation.translate` — schema-aware vs schema-oblivious
  translation pipelines (experiment E9): the DOM reference path, the
  interned-memoized streaming path, and the single-pass
  infer→translate→write flow (experiment E21);
- :mod:`repro.translation.stream` — the DOM-free translate machine
  (experiment E22): a fused column program compiled from the resolution
  + Parquet + Avro trees drives the shredder and row encoder straight
  from each document's byte span.
"""

from repro.translation import avro
from repro.translation.parquet import (
    Column,
    ColumnStore,
    PLeaf,
    PList,
    PRecord,
    Shredder,
    assemble,
    compile_schema,
    shred,
)
from repro.translation.stream import StreamTranslator, compile_column_program
from repro.translation.translate import (
    ObliviousReport,
    Resolution,
    TextifyPlan,
    TranslationReport,
    TranslationRun,
    column_store_json,
    resolve_interned,
    resolve_type,
    schema_aware_translate,
    schema_oblivious_translate,
    textify,
    translate_interned,
    translate_report_path,
    write_artifacts,
)

__all__ = [
    "avro",
    "Column",
    "ColumnStore",
    "PLeaf",
    "PList",
    "PRecord",
    "Shredder",
    "assemble",
    "compile_schema",
    "shred",
    "StreamTranslator",
    "compile_column_program",
    "ObliviousReport",
    "Resolution",
    "TextifyPlan",
    "TranslationReport",
    "TranslationRun",
    "column_store_json",
    "resolve_interned",
    "resolve_type",
    "schema_aware_translate",
    "schema_oblivious_translate",
    "textify",
    "translate_interned",
    "translate_report_path",
    "write_artifacts",
]
