"""DOM-free translation: the shredder and row encoder driven straight
from the byte stream.

The last materialisation in the corpus→artifact path was the translate
pass itself: ``translate_report_path`` built one DOM per document (via
the Fad.js-style speculative decoder), textified it, and walked it twice
more — once for the Parquet shredder, once for the Avro row encoder.
This module removes all three walks.  A :class:`Resolution` (resolved
type + textify plan) is compiled *together with* the ``PNode`` and
``AvroSchema`` trees into one fused **column program**: a tree of small
op objects, one per schema position, each carrying

- the position's :class:`~repro.translation.parquet.Column` plus its
  *static* definition levels (max, null, and the precompiled
  ``(column, level)`` emission lists for absent fields / null records /
  empty lists — ``_emit_missing`` flattened at compile time);
- the position's Avro framing (is it wrapped in the resolver's
  ``union[null, T]``; the precomputed bytes an absent optional field
  writes, via :func:`~repro.translation.avro.missing_field_bytes`).

:class:`StreamTranslator` then walks each document's **byte range** with
compiled regex scans built from the lexer's shared fragments (the same
master-pattern idiom as ``types/build.py``): one fused match per record
member / array element, Parquet ``(rep, def, value)`` entries appended
directly to the columns, Avro bytes emitted as the walk goes.  String
values without escapes are written to the row **as the raw body bytes**
(already UTF-8); numbers convert straight from the byte slice.

Two ordering facts make the single walk sound:

- Parquet column entry order is invariant under record key order — each
  column is fed only by its own path, and multiple entries per row come
  only from arrays, in element order — so entries append in document
  order;
- Avro record fields are written in *schema* order (``RecType`` fields
  sort by name) while documents arrive in insertion order, so each
  record op buffers its members' encoded fragments in a reusable
  scratch buffer and flushes them in schema order at the closing brace.

**Fallback (JSON-text) subtrees capture the raw line slice verbatim** —
the byte-range walk gives the subtree's exact source bytes, where the
DOM path re-serialises the parsed value.  On serializer-canonical
corpora (lines produced by :func:`~repro.jsonvalue.serializer.dumps`,
which is compositional) the two are byte-identical — the differential
tier pins this; on non-canonical spellings (``\\uXXXX`` escapes,
``1e3``, interior whitespace) the stream engine preserves the source
spelling, which is the more faithful artifact.

Anything the structural walk cannot prove — unknown or duplicate keys,
missing required fields, type mismatches, malformed syntax, bad UTF-8,
schema nesting beyond the recursion budget — raises the internal
``_Decline``: the document's column entries are rolled back (each
column's lengths were marked at document start) and the **whole
document delegates to the existing DOM path** (speculative decode →
textify → ``Shredder.add`` → ``RowEncoder.encode_row``), which owns the
exact result and error behaviour.  Declines are per-document, so a
poisoned line never degrades its neighbours.
"""

from __future__ import annotations

import re
import struct

from repro.errors import TranslationError
from repro.jsonvalue.lexer import (
    FULL_STRING_BODY_PATTERN_BYTES,
    INT_PATTERN_BYTES,
    NUMBER_TAIL_PATTERN_BYTES,
    WHITESPACE_PATTERN_BYTES,
    _Scanner,
)
from repro.translation import avro
from repro.translation.parquet import (
    PLeaf,
    PList,
    PNode,
    PRecord,
    Shredder,
    _rep_of,
    leaf_paths,
)
from repro.translation.translate import (
    ArrPlan,
    CLEAN,
    RecPlan,
    Resolution,
    _Fallback,
    textify,
)

_PACK_DOUBLE = struct.Struct("<d").pack


class _Decline(Exception):
    """Internal: this document cannot be stream-translated; delegate."""

    __slots__ = ()


# --------------------------------------------------------------------------
# compiled scans
#
# One value alternation, shared by every context.  Relative groups:
# +1 string body, +2 number int part, +3 number tail (always set when +2
# is — possibly empty; non-empty makes the literal a float), +4
# true/false, +5 null, +6 "{", +7 "[".  Member patterns prefix a key
# (group 1) so one match covers ``"key": <scalar-or-opener>``; the
# close brace/bracket rides the same pattern as the trailing group, so
# the walk makes exactly one regex match per member / element.  Number
# boundary errors ("01", "1.5.5", "1e+") need no explicit check: the
# maximal match leaves the offending byte in place and the *next* match
# (separator or end-of-line) fails on it, declining the document.
# --------------------------------------------------------------------------

_WS = WHITESPACE_PATTERN_BYTES
_VALUE_CORE = (
    b'"(' + FULL_STRING_BODY_PATTERN_BYTES + b')"'
    + b"|(" + INT_PATTERN_BYTES + b")(" + NUMBER_TAIL_PATTERN_BYTES + b")"
    + b"|(true|false)|(null)"
    + rb"|(\{)|(\[)"
)
_KEY = b'"(' + FULL_STRING_BODY_PATTERN_BYTES + b')"' + _WS + b":" + _WS

_V_ROOT = re.compile(_WS + b"(?:" + _VALUE_CORE + b")")
_M_FIRST = re.compile(_WS + b"(?:" + _KEY + b"(?:" + _VALUE_CORE + rb")|(\}))")
_M_NEXT = re.compile(
    _WS + b"(?:," + _WS + _KEY + b"(?:" + _VALUE_CORE + rb")|(\}))"
)
_E_FIRST = re.compile(_WS + b"(?:" + _VALUE_CORE + rb"|(\]))")
_E_NEXT = re.compile(_WS + b"(?:," + _WS + b"(?:" + _VALUE_CORE + rb")|(\]))")
_M_CLOSE = 9  # close-brace group in _M_FIRST/_M_NEXT (key shifts by 1)
_E_CLOSE = 8  # close-bracket group in _E_FIRST/_E_NEXT

_WS_RUN = re.compile(_WS)
_CLOSE_BRACE = re.compile(_WS + rb"\}")

# Fallback subtrees: a validating skip over one container (full string/
# number/literal grammar, comma/colon structure) finds the raw-slice
# extent without building a value.  Depth-capped: deeper documents
# delegate so the parser's own nesting error surfaces.
_SK_VALUE = _V_ROOT
_SK_OBJ_ENTRY = re.compile(_WS + rb"(?:(\})|" + _KEY + b")")
_SK_OBJ_NEXT = re.compile(_WS + rb"(?:(\})|," + _WS + _KEY + b")")
_SK_ARR_CLOSE = re.compile(_WS + rb"\]")
_SK_ARR_NEXT = re.compile(_WS + rb"(?:(\])|,)")
_SKIP_MAX_DEPTH = 512


def _skip_value(data, pos: int, end: int, depth: int = 0) -> int:
    """Validating scan over one JSON value at ``pos``; returns its end.

    Grammar-exact for structure and token lexemes (UTF-8 validity is the
    caller's decode); any mismatch or over-deep nesting declines.
    """
    if depth > _SKIP_MAX_DEPTH:
        raise _Decline
    m = _SK_VALUE.match(data, pos, end)
    if m is None:
        raise _Decline
    if m.group(6) is not None:  # {
        m2 = _SK_OBJ_ENTRY.match(data, m.end(), end)
        if m2 is None:
            raise _Decline
        while m2.group(1) is None:
            pos = _skip_value(data, m2.end(), end, depth + 1)
            m2 = _SK_OBJ_NEXT.match(data, pos, end)
            if m2 is None:
                raise _Decline
        return m2.end()
    if m.group(7) is not None:  # [
        pos = m.end()
        mc = _SK_ARR_CLOSE.match(data, pos, end)
        if mc is not None:
            return mc.end()
        while True:
            pos = _skip_value(data, pos, end, depth + 1)
            m2 = _SK_ARR_NEXT.match(data, pos, end)
            if m2 is None:
                raise _Decline
            if m2.group(1) is not None:
                return m2.end()
            pos = m2.end()
    return m.end()  # scalar


# --------------------------------------------------------------------------
# the column program
# --------------------------------------------------------------------------


class _ScalarOp:
    """A typed leaf: one column, one Avro primitive."""

    __slots__ = ("column", "kind", "nullable", "max_def", "null_def", "aunion")

    def __init__(self, column, kind, nullable, aunion):
        self.column = column
        self.kind = kind  # bool | long | double | string | null
        self.nullable = nullable
        self.max_def = column.max_definition
        self.null_def = column.max_definition - 1
        self.aunion = aunion  # wrapped in union[null, T]


class _EmptyOp:
    """The ``empty_object`` marker leaf (a field-less record)."""

    __slots__ = ("column", "nullable", "max_def", "null_def", "aunion")

    def __init__(self, column, nullable, aunion):
        self.column = column
        self.nullable = nullable
        self.max_def = column.max_definition
        self.null_def = column.max_definition - 1
        self.aunion = aunion


class _FallbackOp:
    """A JSON-text escape-hatch leaf: the raw subtree slice, verbatim."""

    __slots__ = ("column", "max_def", "aunion")

    def __init__(self, column, aunion):
        self.column = column
        self.max_def = column.max_definition
        self.aunion = aunion


class _FieldOp:
    """One record field: the child op plus precompiled absence handling."""

    __slots__ = ("name", "op", "missing_cols", "missing_avro")

    def __init__(self, name, op, missing_cols, missing_avro):
        self.name = name
        self.op = op
        # None for required fields (absence declines → DOM error);
        # otherwise the (column, def_level) entries _emit_missing would
        # produce and the bytes RowEncoder._emit would write.
        self.missing_cols = missing_cols
        self.missing_avro = missing_avro


class _RecordOp:
    """A record position: fields in schema order, members in any order."""

    __slots__ = ("fields", "by_name", "nullable", "aunion", "null_cols",
                 "scratch", "spans")

    def __init__(self, fields, nullable, aunion, null_cols):
        self.fields = fields
        self.by_name = {f.name: f for f in fields}
        self.nullable = nullable
        self.aunion = aunion
        self.null_cols = null_cols  # emissions for an explicit null record
        # Members arrive in document order but Avro wants schema order:
        # fragments buffer here and flush at the closing brace.  Ops are
        # position-specific and never re-entered before closing (types
        # are finite trees), so one scratch per op suffices.
        self.scratch = bytearray()
        self.spans = {}


class _ListOp:
    """A repeated position: element op plus the empty-list emissions."""

    __slots__ = ("element", "cont_rep", "empty_cols", "aunion", "scratch")

    def __init__(self, element, cont_rep, empty_cols, aunion):
        self.element = element
        self.cont_rep = cont_rep
        self.empty_cols = empty_cols
        self.aunion = aunion
        self.scratch = bytearray()  # buffers the Avro count block's items


def compile_column_program(
    resolution: Resolution, pnode: PNode, aschema, columns: dict
):
    """Fuse a resolution with its compiled Parquet/Avro schemas.

    ``pnode``/``aschema`` must be the compiled trees of
    ``resolution.resolved`` and ``columns`` the Shredder's path→Column
    dict over ``pnode`` — the three walks happen in lockstep, so every
    op lands on the exact Column object the DOM shredder would feed.
    Raises :class:`TranslationError` on any shape the resolver never
    produces (callers treat that as "use the DOM engine").
    """
    return _compile_op(resolution.plan, pnode, aschema, columns, "", 0)


def _compile_op(plan, pnode, anode, columns, path, deflevel):
    aunion = False
    if anode.__class__ is avro.AUnion:
        if not avro._is_optional_union(anode):
            raise TranslationError(
                f"union at {path or '<root>'} is not union[null, T]"
            )
        aunion = True
        anode = anode.branches[1]
    if plan.__class__ is _Fallback:
        return _FallbackOp(columns[path], aunion)
    pcls = pnode.__class__
    if pcls is PLeaf:
        if pnode.nullable and not aunion:
            raise TranslationError(
                f"nullable leaf at {path or '<root>'} without a null branch"
            )
        if pnode.kind == "empty_object":
            return _EmptyOp(columns[path], pnode.nullable, aunion)
        if pnode.kind == "json":  # pragma: no cover - relabel is post-hoc
            raise TranslationError("json leaves only exist after relabel")
        return _ScalarOp(columns[path], pnode.kind, pnode.nullable, aunion)
    if pcls is PRecord:
        if anode.__class__ is not avro.ARecord or len(anode.fields) != len(
            pnode.fields
        ):
            raise TranslationError(f"schema trees disagree at {path!r}")
        if pnode.nullable and not aunion:
            raise TranslationError(
                f"nullable record at {path or '<root>'} without a null branch"
            )
        children = plan.children if plan.__class__ is RecPlan else {}
        base = deflevel + (1 if pnode.nullable else 0)
        fields = []
        for pf, af in zip(pnode.fields, anode.fields):
            if pf.name != af.name:
                raise TranslationError(f"schema trees disagree at {path!r}")
            child_path = f"{path}.{pf.name}" if path else pf.name
            child = _compile_op(
                children.get(pf.name, CLEAN),
                pf.node,
                af.type,
                columns,
                child_path,
                base + (0 if pf.required else 1),
            )
            if pf.required:
                missing_cols = missing_avro = None
            else:
                missing_cols = tuple(
                    (columns[p], base) for p in leaf_paths(pf.node, child_path)
                )
                missing_avro = avro.missing_field_bytes(af.type)
            fields.append(_FieldOp(pf.name, child, missing_cols, missing_avro))
        null_cols = ()
        if pnode.nullable:
            null_cols = tuple(
                (columns[p], deflevel)
                for pf in pnode.fields
                for p in leaf_paths(
                    pf.node, f"{path}.{pf.name}" if path else pf.name
                )
            )
        return _RecordOp(tuple(fields), pnode.nullable, aunion, null_cols)
    if pcls is PList:
        if anode.__class__ is not avro.AArray:
            raise TranslationError(f"schema trees disagree at {path!r}")
        child_path = f"{path}.[]" if path else "[]"
        item_plan = plan.item if plan.__class__ is ArrPlan else CLEAN
        element = _compile_op(
            item_plan, pnode.element, anode.items, columns, child_path,
            deflevel + 1,
        )
        empty_cols = tuple(
            (columns[p], deflevel) for p in leaf_paths(pnode.element, child_path)
        )
        return _ListOp(element, _rep_of(child_path), empty_cols, aunion)
    raise TranslationError(f"unexpected schema node {pnode!r}")


# --------------------------------------------------------------------------
# the translate machine
# --------------------------------------------------------------------------

_MISSING = object()


class StreamTranslator:
    """Translate documents from raw byte ranges, no DOM on clean paths.

    Feeds the same :class:`Shredder` and :class:`RowEncoder` state the
    DOM loop would; :meth:`translate_range` walks one line's byte span,
    appends its Parquet entries, bumps the shredder's row count, and
    returns the encoded Avro row.  Any decline rolls the columns back
    and replays the document through the DOM path — result- and
    error-identical by construction (``delegated`` counts those).
    """

    __slots__ = ("program", "shredder", "encoder", "plan", "_decoder",
                 "_keys", "_columns", "delegated")

    def __init__(
        self, resolution: Resolution, shredder: Shredder, encoder
    ) -> None:
        try:
            self.program = compile_column_program(
                resolution, shredder.schema, encoder.schema, shredder.columns
            )
        except TranslationError:
            # Defensive: a resolved schema the program cannot express.
            # Every document then takes the DOM path — correct, just not
            # fast; the resolver's output shapes all compile today.
            self.program = None
        self.shredder = shredder
        self.encoder = encoder
        self.plan = resolution.plan
        self._decoder = None  # built on first delegation
        self._keys: dict = {}
        self._columns = list(shredder.columns.values())
        self.delegated = 0

    def translate_range(self, data, start: int, end: int) -> bytes:
        """Translate the document in ``data[start:end]``; returns its row."""
        if self.program is None:
            return self._delegate(data, start, end)
        columns = self._columns
        marks = [(len(c.repetition_levels), len(c.values)) for c in columns]
        out = bytearray()
        try:
            m = _V_ROOT.match(data, start, end)
            if m is None:
                raise _Decline
            pos = self._value(self.program, m, 0, data, end, 0, out)
            if _WS_RUN.match(data, pos, end).end() != end:
                raise _Decline  # trailing garbage (or a number boundary)
        except (_Decline, UnicodeDecodeError, UnicodeEncodeError,
                RecursionError):
            for column, (levels, values) in zip(columns, marks):
                del column.repetition_levels[levels:]
                del column.definition_levels[levels:]
                del column.values[values:]
            return self._delegate(data, start, end)
        self.shredder.row_count += 1
        return bytes(out)

    def _delegate(self, data, start: int, end: int) -> bytes:
        """The DOM path for one document — exact results, exact errors."""
        if self._decoder is None:
            from repro.parsing.fadjs import SpeculativeDecoder

            self._decoder = SpeculativeDecoder()
        self.delegated += 1
        text = bytes(data[start:end]).decode("utf-8")
        prepared = textify(self._decoder.decode(text), self.plan)
        self.shredder.add(prepared)
        return self.encoder.encode_row(prepared)

    # -- the walk ----------------------------------------------------------

    def _value(self, op, m, base, data, end, rep, out) -> int:
        """Emit the value whose match is ``m`` (groups offset by
        ``base``); returns the scan position after the value."""
        cls = op.__class__
        if cls is _ScalarOp:
            kind = op.kind
            if kind == "string":
                body = m.group(base + 1)
                if body is None:
                    return self._null(op, m, base, rep, out)
                if b"\\" in body:
                    value = _Scanner(
                        '"' + body.decode("utf-8") + '"'
                    ).scan_string().value
                    raw = value.encode("utf-8")
                else:
                    value = body.decode("utf-8")
                    raw = body
                column = op.column
                column.repetition_levels.append(rep)
                column.definition_levels.append(op.max_def)
                column.values.append(value)
                if op.aunion:
                    out.append(2)
                avro._write_long(out, len(raw))
                out += raw
                return m.end()
            if kind == "long":
                digits = m.group(base + 2)
                if digits is None or m.start(base + 3) != m.end(base + 3):
                    return self._null(op, m, base, rep, out)
                value = int(digits)
                column = op.column
                column.repetition_levels.append(rep)
                column.definition_levels.append(op.max_def)
                column.values.append(value)
                if op.aunion:
                    out.append(2)
                avro._write_long(out, value)
                return m.end()
            if kind == "double":
                digits = m.group(base + 2)
                if digits is None:
                    return self._null(op, m, base, rep, out)
                tail = m.group(base + 3)
                # int spellings keep int column values (DOM parity).
                value = int(digits) if not tail else float(digits + tail)
                column = op.column
                column.repetition_levels.append(rep)
                column.definition_levels.append(op.max_def)
                column.values.append(value)
                if op.aunion:
                    out.append(2)
                out += _PACK_DOUBLE(float(value))
                return m.end()
            if kind == "bool":
                literal = m.group(base + 4)
                if literal is None:
                    return self._null(op, m, base, rep, out)
                value = literal == b"true"
                column = op.column
                column.repetition_levels.append(rep)
                column.definition_levels.append(op.max_def)
                column.values.append(value)
                if op.aunion:
                    out.append(2)
                out.append(1 if value else 0)
                return m.end()
            # kind == "null": matches only the null literal; the column
            # stores no value and Avro null is zero bytes.
            if m.group(base + 5) is None:
                raise _Decline
            column = op.column
            column.repetition_levels.append(rep)
            column.definition_levels.append(op.max_def)
            if op.aunion:
                out.append(2)
            return m.end()
        if cls is _RecordOp:
            if m.group(base + 6) is not None:
                if op.aunion:
                    out.append(2)
                return self._record(op, data, m.end(), end, rep, out)
            if m.group(base + 5) is not None and op.nullable:
                for column, level in op.null_cols:
                    column.repetition_levels.append(rep)
                    column.definition_levels.append(level)
                out.append(0)  # nullable records are always union-wrapped
                return m.end()
            raise _Decline
        if cls is _ListOp:
            if m.group(base + 7) is None:
                raise _Decline
            if op.aunion:
                out.append(2)
            return self._list(op, data, m.end(), end, rep, out)
        if cls is _FallbackOp:
            return self._fallback(op, m, base, data, end, rep, out)
        # _EmptyOp
        if m.group(base + 6) is not None:
            close = _CLOSE_BRACE.match(data, m.end(), end)
            if close is None:
                raise _Decline
            column = op.column
            column.repetition_levels.append(rep)
            column.definition_levels.append(op.max_def)
            if op.aunion:
                out.append(2)  # ARecord with no fields: zero body bytes
            return close.end()
        if m.group(base + 5) is not None and op.nullable:
            column = op.column
            column.repetition_levels.append(rep)
            column.definition_levels.append(op.null_def)
            out.append(0)
            return m.end()
        raise _Decline

    def _null(self, op, m, base, rep, out) -> int:
        """An explicit null at a (necessarily nullable) scalar leaf."""
        if m.group(base + 5) is None or not op.nullable:
            raise _Decline
        column = op.column
        column.repetition_levels.append(rep)
        column.definition_levels.append(op.null_def)
        out.append(0)  # nullable leaves are always union-wrapped
        return m.end()

    def _fallback(self, op, m, base, data, end, rep, out) -> int:
        group = m.group
        if group(base + 1) is not None:  # string: include the quotes
            vstart, vend = m.start(base + 1) - 1, m.end(base + 1) + 1
            pos = m.end()
        elif group(base + 2) is not None:
            vstart, vend = m.start(base + 2), m.end(base + 3)
            pos = m.end()
        elif group(base + 4) is not None:
            vstart, vend = m.span(base + 4)
            pos = m.end()
        elif group(base + 5) is not None:
            vstart, vend = m.span(base + 5)
            pos = m.end()
        else:  # container: a validating skip finds the raw extent
            vstart = m.start(base + 6) if group(base + 6) is not None else (
                m.start(base + 7)
            )
            vend = pos = _skip_value(data, vstart, end)
        raw = bytes(data[vstart:vend])
        value = raw.decode("utf-8")
        column = op.column
        column.repetition_levels.append(rep)
        column.definition_levels.append(op.max_def)
        column.values.append(value)
        if op.aunion:
            out.append(2)
        avro._write_long(out, len(raw))
        out += raw
        return pos

    def _record(self, op, data, pos, end, rep, out) -> int:
        m = _M_FIRST.match(data, pos, end)
        if m is None:
            raise _Decline
        scratch = op.scratch
        spans = op.spans
        scratch.clear()
        spans.clear()
        if m.group(_M_CLOSE) is None:
            by_name = op.by_name
            keys = self._keys
            while True:
                raw = m.group(1)
                name = keys.get(raw, _MISSING)
                if name is _MISSING:
                    if b"\\" in raw:
                        name = _Scanner(
                            '"' + raw.decode("utf-8") + '"'
                        ).scan_string().value
                    else:
                        name = raw.decode("utf-8")
                    keys[bytes(raw)] = name
                fld = by_name.get(name)
                if fld is None or name in spans:
                    # Unknown field (DOM: TranslationError naming the
                    # path) or duplicate key (DOM: last wins, but our
                    # first occurrence already emitted) — delegate.
                    raise _Decline
                mark = len(scratch)
                pos = self._value(fld.op, m, 1, data, end, rep, scratch)
                spans[name] = (mark, len(scratch))
                m = _M_NEXT.match(data, pos, end)
                if m is None:
                    raise _Decline
                if m.group(_M_CLOSE) is not None:
                    break
        pos = m.end()
        get = spans.get
        for fld in op.fields:
            span = get(fld.name)
            if span is None:
                fragment = fld.missing_avro
                if fragment is None:
                    raise _Decline  # missing required field
                for column, level in fld.missing_cols:
                    column.repetition_levels.append(rep)
                    column.definition_levels.append(level)
                out += fragment
            else:
                out += scratch[span[0] : span[1]]
        return pos

    def _list(self, op, data, pos, end, rep, out) -> int:
        m = _E_FIRST.match(data, pos, end)
        if m is None:
            raise _Decline
        if m.group(_E_CLOSE) is not None:
            for column, level in op.empty_cols:
                column.repetition_levels.append(rep)
                column.definition_levels.append(level)
            out.append(0)  # an empty array is just the terminator block
            return m.end()
        scratch = op.scratch
        scratch.clear()
        element = op.element
        erep = rep
        cont = op.cont_rep
        count = 0
        while True:
            pos = self._value(element, m, 0, data, end, erep, scratch)
            count += 1
            erep = cont
            m = _E_NEXT.match(data, pos, end)
            if m is None:
                raise _Decline
            if m.group(_E_CLOSE) is not None:
                break
        avro._write_long(out, count)
        out += scratch
        out.append(0)
        return m.end()
