"""A Parquet-like columnar shredder with definition/repetition levels.

The second half of the tutorial's translation opportunity (§5): nested
JSON stored *columnar*.  This is the Dremel record-shredding model that
Parquet implements:

- the schema is a tree of **required/optional fields**, **repeated**
  (list) nodes, and typed leaves;
- every leaf becomes a **column**; each value occurrence is stored as a
  triple ``(repetition_level, definition_level, value)``;
- the repetition level says *which repeated ancestor starts a new entry*;
  the definition level says *how far down the optional/repeated path the
  record actually reached* — together they encode the full nesting without
  storing any structure per row.

``assemble(shred(docs)) == docs`` (up to object key order) is DESIGN.md
invariant 6 and is property-tested against the dataset generators.

General unions are not representable (same restriction as real Parquet);
the schema-aware translation layer resolves them first
(:mod:`repro.translation.translate`).  The nullable shapes it produces
*are*: ``Null + leaf`` and ``Null + record`` each add one definition
level, so an optional object keeps typed leaf columns and an explicit
``null`` stays distinct from an absent field.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Tuple

from repro.errors import TranslationError
from repro.jsonvalue.model import is_integer_value
from repro.types.terms import (
    ArrType,
    AtomType,
    BotType,
    RecType,
    Type,
    UnionType,
)

_LEAF_KINDS = ("bool", "long", "double", "string", "null", "json", "empty_object")


class PNode:
    """Base class of compiled Parquet-like schema nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class PLeaf(PNode):
    kind: str  # one of _LEAF_KINDS
    nullable: bool = False  # +1 definition level when value is not null

    def __post_init__(self) -> None:
        if self.kind not in _LEAF_KINDS:
            raise TranslationError(f"unknown leaf kind {self.kind!r}")


@dataclass(frozen=True)
class PField(PNode):
    name: str
    node: PNode
    required: bool  # optional fields add a definition level


@dataclass(frozen=True)
class PRecord(PNode):
    fields: Tuple[PField, ...]
    nullable: bool = False  # +1 definition level when the record is not null


@dataclass(frozen=True)
class PList(PNode):
    element: PNode  # adds one repetition and one definition level


def compile_schema(t: Type, memo: "dict | None" = None) -> PNode:
    """Compile an inferred type into a Parquet-like schema tree.

    Supported: records (with optionality), arrays, atoms, and the union
    shapes ``T + Null`` (nullable leaf or nullable record), plus unions
    of number atoms with an optional ``Null`` (double).  Any other union
    raises — resolve it first (see ``translate.resolve_type``).

    ``memo`` (id-of-node → compiled subtree) lets callers holding
    *canonical interned* types compile each shared subtree once; the
    translation layer keys such memos to the intern-table epoch.
    """
    if memo is not None:
        hit = memo.get(id(t))
        if hit is not None:
            return hit
    out = _compile(t, memo)
    if memo is not None:
        memo[id(t)] = out
    return out


def _compile(t: Type, memo: "dict | None") -> PNode:
    if isinstance(t, AtomType):
        kind = {
            "null": "null",
            "bool": "bool",
            "int": "long",
            "flt": "double",
            "num": "double",
            "str": "string",
        }[t.tag]
        return PLeaf(kind)
    if isinstance(t, ArrType):
        if isinstance(t.item, BotType):
            return PList(PLeaf("null"))
        return PList(compile_schema(t.item, memo))
    if isinstance(t, RecType):
        if not t.fields:
            # A field-less record has no leaf columns of its own; store it
            # as a marker leaf (value is always the empty object).
            return PLeaf("empty_object")
        return PRecord(
            tuple(
                PField(f.name, compile_schema(f.type, memo), required=f.required)
                for f in t.fields
            )
        )
    if isinstance(t, UnionType):
        members = list(t.members)
        nulls = [m for m in members if isinstance(m, AtomType) and m.tag == "null"]
        rest = [m for m in members if m not in nulls]
        if nulls and len(rest) == 1:
            inner = compile_schema(rest[0], memo)
            if isinstance(inner, PLeaf):
                return PLeaf(inner.kind, nullable=True)
            if isinstance(inner, PRecord):
                return PRecord(inner.fields, nullable=True)
            raise TranslationError(
                "nullable arrays are not supported; resolve the union first"
            )
        if rest and all(
            isinstance(m, AtomType) and m.tag in ("int", "flt", "num") for m in rest
        ):
            return PLeaf("double", nullable=bool(nulls))
        raise TranslationError(f"union {t} is not Parquet-representable")
    raise TranslationError(f"cannot compile {t!r} for columnar storage")


@dataclass
class Column:
    """One leaf column: parallel level and value arrays."""

    path: str
    kind: str
    max_repetition: int
    max_definition: int
    repetition_levels: list = field(default_factory=list)
    definition_levels: list = field(default_factory=list)
    values: list = field(default_factory=list)  # only defined values

    def entry_count(self) -> int:
        return len(self.repetition_levels)

    def encoded_size(self) -> int:
        """Approximate byte size: packed levels + plainly encoded values."""
        size = 0
        # Levels: one byte each when levels exist at all (Parquet bit-packs
        # tighter; one byte is a fair upper bound at our scale).
        if self.max_repetition > 0:
            size += len(self.repetition_levels)
        if self.max_definition > 0:
            size += len(self.definition_levels)
        for value in self.values:
            size += _plain_size(self.kind, value)
        return size


def _plain_size(kind: str, value: Any) -> int:
    if kind == "bool":
        return 1
    if kind == "long":
        return max(1, (abs(int(value)).bit_length() + 7) // 7)
    if kind == "double":
        return 8
    if kind in ("string", "json"):
        return 4 + len(str(value).encode("utf-8"))
    return 0  # null


@dataclass
class ColumnStore:
    """The shredded representation of a collection."""

    schema: PNode
    columns: dict  # path -> Column
    row_count: int

    def total_encoded_size(self) -> int:
        return sum(c.encoded_size() for c in self.columns.values())

    def column(self, path: str) -> Column:
        if path not in self.columns:
            raise TranslationError(f"no column {path!r}")
        return self.columns[path]


def _leaf_columns(node: PNode, path: str, rep: int, deflevel: int, out: dict) -> None:
    if isinstance(node, PLeaf):
        out[path] = Column(
            path=path,
            kind=node.kind,
            max_repetition=rep,
            max_definition=deflevel + (1 if node.nullable else 0),
        )
        return
    if isinstance(node, PRecord):
        base = deflevel + (1 if node.nullable else 0)
        for f in node.fields:
            child_path = f"{path}.{f.name}" if path else f.name
            _leaf_columns(
                f.node, child_path, rep, base + (0 if f.required else 1), out
            )
        return
    if isinstance(node, PList):
        _leaf_columns(node.element, f"{path}.[]" if path else "[]", rep + 1, deflevel + 1, out)
        return
    raise TranslationError(f"unexpected schema node {node!r}")  # pragma: no cover


class Shredder:
    """Incremental record shredder: one document at a time, no corpus list.

    ``shred`` is this class run over a whole iterable; the single-pass
    translation pipeline feeds it per document instead, interleaved with
    the Avro row encoder, so prepared documents are never materialised
    as a second collection.
    """

    __slots__ = ("schema", "columns", "row_count")

    def __init__(self, schema: PNode) -> None:
        self.schema = schema
        self.columns: dict[str, Column] = {}
        _leaf_columns(schema, "", 0, 0, self.columns)
        self.row_count = 0

    def add(self, doc: Any) -> None:
        self.row_count += 1
        _shred_value(self.schema, doc, "", 0, 0, self.columns)

    def finish(self) -> ColumnStore:
        return ColumnStore(
            schema=self.schema, columns=self.columns, row_count=self.row_count
        )


def shred(documents: Iterable[Any], schema: PNode) -> ColumnStore:
    """Shred schema-conforming documents into columns."""
    shredder = Shredder(schema)
    for doc in documents:
        shredder.add(doc)
    return shredder.finish()


def _emit_missing(node: PNode, path: str, rep: int, deflevel: int, columns: dict) -> None:
    """Record 'not defined below this point' in every descendant column."""
    if isinstance(node, PLeaf):
        column = columns[path]
        column.repetition_levels.append(rep)
        column.definition_levels.append(deflevel)
        return
    if isinstance(node, PRecord):
        for f in node.fields:
            child = f"{path}.{f.name}" if path else f.name
            _emit_missing(f.node, child, rep, deflevel, columns)
        return
    if isinstance(node, PList):
        _emit_missing(node.element, f"{path}.[]" if path else "[]", rep, deflevel, columns)
        return
    raise TranslationError(f"unexpected schema node {node!r}")  # pragma: no cover


def leaf_paths(node: PNode, path: str = "") -> list:
    """Paths of every leaf column under ``node``.

    Exactly the columns :func:`_emit_missing` touches when the subtree at
    ``path`` is absent — the stream translate machine precompiles this
    traversal into flat ``(column, definition_level)`` emission lists so a
    missing optional field costs one loop over them, not a tree walk.
    """
    if isinstance(node, PLeaf):
        return [path]
    if isinstance(node, PRecord):
        out = []
        for f in node.fields:
            out.extend(leaf_paths(f.node, f"{path}.{f.name}" if path else f.name))
        return out
    if isinstance(node, PList):
        return leaf_paths(node.element, f"{path}.[]" if path else "[]")
    raise TranslationError(f"unexpected schema node {node!r}")  # pragma: no cover


def _shred_value(
    node: PNode,
    value: Any,
    path: str,
    rep: int,
    deflevel: int,
    columns: dict,
) -> None:
    if isinstance(node, PLeaf):
        column = columns[path]
        column.repetition_levels.append(rep)
        if node.nullable and value is None:
            column.definition_levels.append(deflevel)
        else:
            _check_leaf(node.kind, value, path)
            column.definition_levels.append(column.max_definition)
            if node.kind not in ("null", "empty_object"):
                column.values.append(value)
        return
    if isinstance(node, PRecord):
        if node.nullable:
            if value is None:
                # Defined up to the record itself but not past it: one
                # entry per descendant column at the record's own level.
                for f in node.fields:
                    child = f"{path}.{f.name}" if path else f.name
                    _emit_missing(f.node, child, rep, deflevel, columns)
                return
            deflevel += 1
        if not isinstance(value, dict):
            raise TranslationError(f"expected object at {path or '<root>'}, got {value!r}")
        matched = 0
        for f in node.fields:
            child = f"{path}.{f.name}" if path else f.name
            if f.name in value:
                matched += 1
                _shred_value(
                    f.node,
                    value[f.name],
                    child,
                    rep,
                    deflevel + (0 if f.required else 1),
                    columns,
                )
            elif f.required:
                raise TranslationError(f"missing required field {child!r}")
            else:
                _emit_missing(f.node, child, rep, deflevel, columns)
        if matched != len(value):
            known = {f.name for f in node.fields}
            extra = next(k for k in value if k not in known)
            where = f"{path}.{extra}" if path else extra
            raise TranslationError(
                f"document field {where!r} is not in the schema"
            )
        return
    if isinstance(node, PList):
        if not isinstance(value, list):
            raise TranslationError(f"expected array at {path or '<root>'}, got {value!r}")
        child = f"{path}.[]" if path else "[]"
        if not value:
            # Defined-but-empty list: definition stops at the list's own
            # level (one entry per descendant column).
            _emit_missing(node.element, child, rep, deflevel, columns)
            return
        continuation_rep = _rep_of(child)
        for i, element in enumerate(value):
            _shred_value(
                node.element,
                element,
                child,
                rep if i == 0 else continuation_rep,
                deflevel + 1,
                columns,
            )
        return
    raise TranslationError(f"unexpected schema node {node!r}")  # pragma: no cover


def _rep_of(path: str) -> int:
    return path.count(".[]") + (1 if path.startswith("[]") else 0)


def _check_leaf(kind: str, value: Any, path: str) -> None:
    ok = {
        "bool": lambda v: isinstance(v, bool),
        "long": is_integer_value,
        "double": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
        "string": lambda v: isinstance(v, str),
        "null": lambda v: v is None,
        "json": lambda v: isinstance(v, str),
        "empty_object": lambda v: isinstance(v, dict) and not v,
    }[kind]
    if not ok(value):
        raise TranslationError(f"value {value!r} does not fit column {path!r} ({kind})")


# ---------------------------------------------------------------------------
# assembly
# ---------------------------------------------------------------------------


def assemble(store: ColumnStore) -> list[Any]:
    """Rebuild the documents from the shredded columns."""
    # Split every column into per-row runs: repetition level 0 starts a row.
    per_row: dict[str, list[list[tuple[int, int, Any]]]] = {}
    for path, column in store.columns.items():
        rows: list[list[tuple[int, int, Any]]] = []
        value_index = 0
        for rep, deflevel in zip(column.repetition_levels, column.definition_levels):
            value: Any = None
            if deflevel == column.max_definition and column.kind not in ("null", "empty_object"):
                value = column.values[value_index]
                value_index += 1
            elif deflevel == column.max_definition and column.kind == "empty_object":
                value = {}
            if rep == 0:
                rows.append([])
            rows[-1].append((rep, deflevel, value))
        per_row[path] = rows

    documents = []
    for row in range(store.row_count):
        entries = {
            path: (rows[row] if row < len(rows) else [])
            for path, rows in per_row.items()
        }
        documents.append(_assemble_row(store.schema, entries))
    return documents


def _assemble_row(schema: PNode, entries: dict) -> Any:
    value, _ = _assemble_node(schema, "", 0, 0, entries, {p: 0 for p in entries})
    return value


def _assemble_node(
    node: PNode,
    path: str,
    rep: int,
    deflevel: int,
    entries: dict,
    cursors: dict,
) -> tuple[Any, bool]:
    """Rebuild the value of ``node``; returns (value, defined).

    ``deflevel`` is the definition level *at this node* (its own field
    optionality already counted).  ``cursors`` tracks, per column, how many
    entries have been consumed.
    """
    if isinstance(node, PLeaf):
        row_entries = entries[path]
        cursor = cursors[path]
        if cursor >= len(row_entries):
            raise TranslationError(f"column {path!r} exhausted during assembly")
        _, d, value = row_entries[cursor]
        cursors[path] = cursor + 1
        own_max = deflevel + (1 if node.nullable else 0)
        if d >= deflevel:
            if node.nullable and d < own_max:
                return None, True
            if node.kind == "null":
                return None, True
            if node.kind == "empty_object":
                return {}, True
            return value, True
        return None, False
    if isinstance(node, PRecord):
        # Defined iff the definition level of any descendant entry reaches
        # this record's level (probe the first leaf, def levels are
        # monotone along the path).
        probe_d = _peek_definition(node, path, entries, cursors)
        if probe_d < deflevel:
            _consume_missing(node, path, entries, cursors)
            return None, False
        inner = deflevel
        if node.nullable:
            if probe_d == deflevel:
                # Reached the record but not past its nullable level:
                # an explicit null, distinct from "field absent".
                _consume_missing(node, path, entries, cursors)
                return None, True
            inner = deflevel + 1
        out = {}
        for f in node.fields:
            child = f"{path}.{f.name}" if path else f.name
            child_def = inner + (0 if f.required else 1)
            value, defined = _assemble_node(f.node, child, rep, child_def, entries, cursors)
            if defined:
                out[f.name] = value
            # not defined: optional field absent → key omitted
        return out, True
    if isinstance(node, PList):
        child = f"{path}.[]" if path else "[]"
        child_rep = rep + 1
        child_def = deflevel + 1
        probe_d = _peek_definition(node.element, child, entries, cursors)
        if probe_d >= child_def:
            out_list = []
            while True:
                value, _ = _assemble_node(
                    node.element, child, child_rep, child_def, entries, cursors
                )
                out_list.append(value)
                if not _next_is_continuation(node.element, child, child_rep, entries, cursors):
                    break
            return out_list, True
        _consume_missing(node.element, child, entries, cursors)
        if probe_d >= deflevel:
            return [], True  # defined but empty
        return None, False  # list not reached at all
    raise TranslationError(f"unexpected schema node {node!r}")  # pragma: no cover


def _first_leaf(node: PNode, path: str) -> str:
    if isinstance(node, PLeaf):
        return path
    if isinstance(node, PRecord):
        f = node.fields[0]
        return _first_leaf(f.node, f"{path}.{f.name}" if path else f.name)
    if isinstance(node, PList):
        return _first_leaf(node.element, f"{path}.[]" if path else "[]")
    raise TranslationError(f"unexpected schema node {node!r}")  # pragma: no cover


def _peek_definition(node: PNode, path: str, entries: dict, cursors: dict) -> int:
    """Definition level of the next unconsumed entry of the first leaf."""
    probe = _first_leaf(node, path)
    cursor = cursors[probe]
    row_entries = entries[probe]
    if cursor >= len(row_entries):
        raise TranslationError(f"column {probe!r} exhausted during assembly")
    _, d, _ = row_entries[cursor]
    return d


def _consume_missing(node: PNode, path: str, entries: dict, cursors: dict) -> None:
    """Advance one entry in every descendant column (undefined subtree)."""
    if isinstance(node, PLeaf):
        cursors[path] += 1
        return
    if isinstance(node, PRecord):
        for f in node.fields:
            _consume_missing(f.node, f"{path}.{f.name}" if path else f.name, entries, cursors)
        return
    if isinstance(node, PList):
        _consume_missing(node.element, f"{path}.[]" if path else "[]", entries, cursors)
        return
    raise TranslationError(f"unexpected schema node {node!r}")  # pragma: no cover


def _next_is_continuation(
    element: PNode, child_path: str, child_rep: int, entries: dict, cursors: dict
) -> bool:
    """Does the next entry of the list's first leaf continue this list?"""
    probe = _first_leaf(element, child_path)
    cursor = cursors[probe]
    row_entries = entries[probe]
    if cursor >= len(row_entries):
        return False
    r, _, _ = row_entries[cursor]
    return r >= child_rep
