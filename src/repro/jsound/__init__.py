"""JSound compact schema language — see :mod:`repro.jsound.schema`."""

from repro.jsound.schema import (
    ATOMIC_TYPES,
    JSoundFailure,
    JSoundResult,
    JSoundSchema,
    JSoundSchemaError,
    compile_jsound,
)
from repro.jsound.verbose import (
    compact_to_verbose,
    compile_verbose,
    verbose_to_compact,
)

__all__ = [
    "ATOMIC_TYPES",
    "JSoundFailure",
    "JSoundResult",
    "JSoundSchema",
    "JSoundSchemaError",
    "compile_jsound",
    "compact_to_verbose",
    "compile_verbose",
    "verbose_to_compact",
]
