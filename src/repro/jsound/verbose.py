"""JSound verbose syntax.

JSound defines two isomorphic syntaxes: the *compact* form (a schema that
mirrors the instance shape — :mod:`repro.jsound.schema`) and a *verbose*
form in which every type is an explicit descriptor object::

    {"kind": "object",
     "content": {
        "name":     {"kind": "atomic", "type": "string"},
        "age":      {"kind": "atomic", "type": "integer"},
        "email":    {"kind": "atomic", "type": "string", "nullable": true},
        "nickname": {"kind": "atomic", "type": "string", "optional": true},
        "friends":  {"kind": "array", "content": {"kind": "atomic", "type": "string"}}
     }}

This module compiles the verbose form onto the same internal nodes as the
compact compiler (one validator, two syntaxes — like JSound itself) and
provides both direction converters; ``compact ↔ verbose`` round-trips are
tested.
"""

from __future__ import annotations

from typing import Any

from repro.jsound.schema import (
    ATOMIC_TYPES,
    JSoundSchema,
    JSoundSchemaError,
    _Array,
    _Atomic,
    _Object,
)


def compile_verbose(document: Any) -> JSoundSchema:
    """Compile a verbose JSound document into a validatable schema."""
    schema = JSoundSchema.__new__(JSoundSchema)
    schema.document = document
    schema._root = _compile_verbose(document)
    return schema


def _compile_verbose(node: Any) -> object:
    if not isinstance(node, dict):
        raise JSoundSchemaError(
            f"verbose JSound descriptors are objects, got {node!r}"
        )
    kind = node.get("kind")
    nullable = bool(node.get("nullable", False))
    if kind == "atomic":
        type_name = node.get("type")
        if type_name not in ATOMIC_TYPES:
            raise JSoundSchemaError(f"unknown atomic type {type_name!r}")
        return _Atomic(type_name, nullable)
    if kind == "array":
        if "content" not in node:
            raise JSoundSchemaError("array descriptors need a 'content' type")
        if nullable:
            raise JSoundSchemaError("nullable containers are not part of JSound")
        return _Array(_compile_verbose(node["content"]), nullable=False)
    if kind == "object":
        content = node.get("content")
        if not isinstance(content, dict):
            raise JSoundSchemaError("object descriptors need a 'content' mapping")
        if nullable:
            raise JSoundSchemaError("nullable containers are not part of JSound")
        members = []
        for name, sub in content.items():
            if not isinstance(sub, dict):
                raise JSoundSchemaError(
                    f"field {name!r} must map to a descriptor object"
                )
            optional = bool(sub.get("optional", False))
            members.append((name, _compile_verbose(sub), optional))
        names = [n for n, _, _ in members]
        if len(set(names)) != len(names):
            raise JSoundSchemaError("duplicate field names in JSound object")
        return _Object(tuple(members), nullable=False)
    raise JSoundSchemaError(f"unknown descriptor kind {kind!r}")


# ---------------------------------------------------------------------------
# syntax converters
# ---------------------------------------------------------------------------


def compact_to_verbose(compact: Any) -> dict[str, Any]:
    """Translate a compact JSound document into the verbose form."""
    from repro.jsound.schema import _compile

    return _node_to_verbose(_compile(compact))


def _node_to_verbose(node: object, *, optional: bool = False) -> dict[str, Any]:
    out: dict[str, Any]
    if isinstance(node, _Atomic):
        out = {"kind": "atomic", "type": node.name}
        if node.nullable:
            out["nullable"] = True
    elif isinstance(node, _Array):
        out = {"kind": "array", "content": _node_to_verbose(node.item)}
    elif isinstance(node, _Object):
        content = {}
        for name, sub, opt in node.members:
            content[name] = _node_to_verbose(sub, optional=opt)
        out = {"kind": "object", "content": content}
    else:  # pragma: no cover - exhaustive
        raise JSoundSchemaError(f"invalid compiled node {node!r}")
    if optional:
        out["optional"] = True
    return out


def verbose_to_compact(verbose: Any) -> Any:
    """Translate a verbose JSound document into the compact form."""
    return _node_to_compact(_compile_verbose(verbose))


def _node_to_compact(node: object) -> Any:
    if isinstance(node, _Atomic):
        return node.name + ("?" if node.nullable else "")
    if isinstance(node, _Array):
        return [_node_to_compact(node.item)]
    if isinstance(node, _Object):
        out = {}
        for name, sub, optional in node.members:
            out[name + ("?" if optional else "")] = _node_to_compact(sub)
        return out
    raise JSoundSchemaError(f"invalid compiled node {node!r}")  # pragma: no cover
