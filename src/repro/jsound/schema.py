"""JSound compact schema language (tutorial Part 2).

JSound is "an alternative, but quite restrictive, schema language" — its
compact form *is itself JSON*: a schema mirrors the shape of the instances
it describes.

::

    {
      "name": "string",
      "age": "integer",
      "email": "string?",          # nullable type ("?" on the type)
      "nickname?": "string",       # optional field ("?" on the field name)
      "friends": ["string"],       # homogeneous array
      "address": {"city": "string", "zip": "string"}
    }

Supported atomic types: ``string integer decimal double boolean null
date dateTime time anyURI hexBinary base64Binary any atomic``.

The restrictions reproduced faithfully (they are the point of comparison
with JSON Schema and Joi in the tutorial): **no union types**, objects are
**closed**, arrays are **homogeneous with exactly one item type**, no
co-occurrence constraints.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SchemaError
from repro.jsonvalue.model import is_integer_value
from repro.jsonschema.formats import (
    check_date,
    check_date_time,
    check_time,
    check_uri_reference,
)


class JSoundSchemaError(SchemaError):
    """Raised for schemas outside the JSound compact grammar."""


@dataclass(frozen=True)
class JSoundFailure:
    path: tuple[object, ...]
    message: str

    def __str__(self) -> str:
        where = ".".join(str(p) for p in self.path) or "<root>"
        return f"{where}: {self.message}"


@dataclass
class JSoundResult:
    failures: list[JSoundFailure] = field(default_factory=list)

    @property
    def valid(self) -> bool:
        return not self.failures

    def __bool__(self) -> bool:
        return self.valid


_HEX_RE = re.compile(r"^(?:[0-9a-fA-F]{2})*$")
_BASE64_RE = re.compile(r"^[A-Za-z0-9+/]*={0,2}$")


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


_ATOMIC_CHECKS = {
    "string": lambda v: isinstance(v, str),
    "integer": is_integer_value,
    "decimal": _is_number,
    "double": _is_number,
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
    "date": lambda v: isinstance(v, str) and check_date(v),
    "dateTime": lambda v: isinstance(v, str) and check_date_time(v),
    "time": lambda v: isinstance(v, str) and check_time(v),
    "anyURI": lambda v: isinstance(v, str) and check_uri_reference(v),
    "hexBinary": lambda v: isinstance(v, str) and _HEX_RE.match(v) is not None,
    "base64Binary": lambda v: isinstance(v, str)
    and len(v) % 4 == 0
    and _BASE64_RE.match(v) is not None,
    "any": lambda v: True,
    "atomic": lambda v: not isinstance(v, (list, dict)),
}

ATOMIC_TYPES = frozenset(_ATOMIC_CHECKS)


@dataclass(frozen=True)
class _Atomic:
    name: str
    nullable: bool


@dataclass(frozen=True)
class _Array:
    item: object
    nullable: bool


@dataclass(frozen=True)
class _Object:
    # name -> (node, optional)
    members: tuple[tuple[str, object, bool], ...]
    nullable: bool


class JSoundSchema:
    """A compiled compact JSound schema."""

    def __init__(self, document: Any) -> None:
        self.document = document
        self._root = _compile(document)

    def validate(self, instance: Any) -> JSoundResult:
        result = JSoundResult()
        _validate(self._root, instance, (), result.failures)
        return result

    def is_valid(self, instance: Any) -> bool:
        return self.validate(instance).valid

    def to_jsonschema(self) -> dict[str, Any]:
        """Export as a JSON Schema document (the inverse direction is lossy)."""
        return _to_jsonschema(self._root)


def compile_jsound(document: Any) -> JSoundSchema:
    """Compile a compact JSound document."""
    return JSoundSchema(document)


def _compile(node: Any) -> object:
    if isinstance(node, str):
        name = node
        nullable = False
        if name.endswith("?"):
            name = name[:-1]
            nullable = True
        if name not in ATOMIC_TYPES:
            raise JSoundSchemaError(f"unknown JSound type {node!r}")
        return _Atomic(name, nullable)
    if isinstance(node, list):
        if len(node) != 1:
            raise JSoundSchemaError(
                "JSound arrays must contain exactly one item type (homogeneous arrays)"
            )
        return _Array(_compile(node[0]), nullable=False)
    if isinstance(node, dict):
        members = []
        for raw_name, sub in node.items():
            if not isinstance(raw_name, str) or not raw_name:
                raise JSoundSchemaError(f"invalid field name {raw_name!r}")
            optional = raw_name.endswith("?")
            name = raw_name[:-1] if optional else raw_name
            members.append((name, _compile(sub), optional))
        names = [name for name, _, _ in members]
        if len(set(names)) != len(names):
            raise JSoundSchemaError("duplicate field names in JSound object")
        return _Object(tuple(members), nullable=False)
    raise JSoundSchemaError(f"invalid JSound schema node {node!r}")


def _validate(node: object, instance: Any, path: tuple, failures: list[JSoundFailure]) -> None:
    if isinstance(node, _Atomic):
        if instance is None and node.nullable:
            return
        if not _ATOMIC_CHECKS[node.name](instance):
            failures.append(
                JSoundFailure(path, f"expected {node.name}, got {type(instance).__name__}")
            )
        return
    if isinstance(node, _Array):
        if not isinstance(instance, list):
            failures.append(
                JSoundFailure(path, f"expected an array, got {type(instance).__name__}")
            )
            return
        for i, item in enumerate(instance):
            _validate(node.item, item, path + (i,), failures)
        return
    if isinstance(node, _Object):
        if not isinstance(instance, dict):
            failures.append(
                JSoundFailure(path, f"expected an object, got {type(instance).__name__}")
            )
            return
        declared = {name for name, _, _ in node.members}
        for name, sub, optional in node.members:
            if name in instance:
                _validate(sub, instance[name], path + (name,), failures)
            elif not optional:
                failures.append(JSoundFailure(path + (name,), f"missing field {name!r}"))
        for name in instance:
            if name not in declared:
                failures.append(
                    JSoundFailure(path + (name,), f"unexpected field {name!r} (closed object)")
                )
        return
    raise JSoundSchemaError(f"invalid compiled node {node!r}")  # pragma: no cover


_ATOMIC_JSONSCHEMA = {
    "string": {"type": "string"},
    "integer": {"type": "integer"},
    "decimal": {"type": "number"},
    "double": {"type": "number"},
    "boolean": {"type": "boolean"},
    "null": {"type": "null"},
    "date": {"type": "string", "format": "date"},
    "dateTime": {"type": "string", "format": "date-time"},
    "time": {"type": "string", "format": "time"},
    "anyURI": {"type": "string", "format": "uri-reference"},
    "hexBinary": {"type": "string", "pattern": "^(?:[0-9a-fA-F]{2})*$"},
    "base64Binary": {"type": "string", "pattern": "^[A-Za-z0-9+/]*={0,2}$"},
    "any": {},
    "atomic": {"type": ["null", "boolean", "number", "string"]},
}


def _to_jsonschema(node: object) -> dict[str, Any]:
    if isinstance(node, _Atomic):
        base = dict(_ATOMIC_JSONSCHEMA[node.name])
        if node.nullable and base.get("type") not in (None, "null"):
            return {"anyOf": [base, {"type": "null"}]}
        return base
    if isinstance(node, _Array):
        return {"type": "array", "items": _to_jsonschema(node.item)}
    if isinstance(node, _Object):
        properties = {name: _to_jsonschema(sub) for name, sub, _ in node.members}
        required = sorted(name for name, _, optional in node.members if not optional)
        out: dict[str, Any] = {
            "type": "object",
            "properties": properties,
            "additionalProperties": False,
        }
        if required:
            out["required"] = required
        return out
    raise JSoundSchemaError(f"invalid compiled node {node!r}")  # pragma: no cover
