"""Projected (Mison-style) parsing with speculative field ordering.

The parser answers analytics queries that touch a handful of fields by
combining three Mison ideas:

1. **structural index, built only to the projection's depth**
   (:class:`~repro.parsing.structural.StructuralIndex`);
2. **pruning**: only the projected members' value spans are ever parsed;
   everything else is skipped at the bitmap level;
3. **speculation**: across a stream of records, a *pattern cache* remembers
   at which member ordinal each projected key appeared last time.  The next
   record probes that ordinal first and falls back to a full member scan on
   a miss (Mison's pattern trees, collapsed to the common case).

``parse_projected(text)`` ≡ ``project(parse(text))`` — DESIGN.md
invariant 4, property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.jsonvalue.parser import parse
from repro.jsonvalue.path import JsonPath
from repro.parsing.projection import ProjectionTree
from repro.parsing.structural import StructuralIndex


@dataclass
class MisonStats:
    """Speculation statistics across a stream."""

    records: int = 0
    speculation_hits: int = 0
    speculation_misses: int = 0
    values_parsed: int = 0
    members_skipped: int = 0

    @property
    def hit_rate(self) -> float:
        probes = self.speculation_hits + self.speculation_misses
        return self.speculation_hits / probes if probes else 0.0


class MisonParser:
    """A projection-pushdown JSON parser for record streams."""

    def __init__(self, projection: Iterable[JsonPath | str]) -> None:
        self.tree = ProjectionTree.from_paths(projection)
        self.levels = max(1, self.tree.max_depth)
        self.stats = MisonStats()
        # pattern cache: (trie node id, key) -> last ordinal where key's
        # colon was found among the object's member colons.
        self._pattern: dict[tuple[int, str], int] = {}

    # ------------------------------------------------------------------

    def parse_projected(self, text: str) -> Any:
        """Parse only the projected parts of one JSON record."""
        self.stats.records += 1
        start = _skip_ws(text, 0)
        if start >= len(text):
            from repro.errors import JsonError

            raise JsonError("empty input is not a JSON record")
        index = StructuralIndex.build(text, levels=self.levels)
        result = self._project_span(index, self.tree, start, len(text.rstrip()), 1)
        return None if result is _MISSING_TO_NONE else result

    def parse_stream(self, lines: Iterable[str]) -> Iterator[Any]:
        """Projected parsing over NDJSON lines."""
        for line in lines:
            if line.strip():
                yield self.parse_projected(line)

    # ------------------------------------------------------------------

    def _project_span(
        self,
        index: StructuralIndex,
        tree: ProjectionTree,
        start: int,
        end: int,
        level: int,
    ) -> Any:
        text = index.text
        if tree.terminal:
            self.stats.values_parsed += 1
            return parse(text[start:end])
        ch = text[start]
        if ch == "{":
            if not tree.fields:
                return {}
            close = index.matching_close(start)
            return self._project_object(index, tree, start, close, level)
        if ch == "[":
            close = index.matching_close(start)
            return self._project_array(index, tree, start, close, level)
        # A scalar where the projection expected structure.
        return _MISSING_TO_NONE


    def _project_object(
        self,
        index: StructuralIndex,
        tree: ProjectionTree,
        open_pos: int,
        close_pos: int,
        level: int,
    ) -> dict:
        colons = index.object_member_colons(open_pos, close_pos, level)
        out: dict[str, Any] = {}
        wanted = tree.fields
        found: dict[str, int] = {}

        # Speculative probe: check each wanted key at its cached ordinal.
        remaining = dict(wanted)
        for name in list(remaining):
            ordinal = self._pattern.get((id(tree), name))
            if ordinal is not None and ordinal < len(colons):
                if index.key_before_colon(colons[ordinal]) == name:
                    self.stats.speculation_hits += 1
                    found[name] = ordinal
                    del remaining[name]
                else:
                    self.stats.speculation_misses += 1

        # Fallback scan for the keys speculation did not resolve.
        if remaining:
            for ordinal, colon in enumerate(colons):
                if not remaining:
                    break
                key = index.key_before_colon(colon)
                if key in remaining:
                    found[key] = ordinal
                    self._pattern[(id(tree), key)] = ordinal
                    del remaining[key]

        self.stats.members_skipped += len(colons) - len(found)

        for name, ordinal in sorted(found.items(), key=lambda kv: kv[1]):
            colon = colons[ordinal]
            vstart, vend = index.value_span(colon, close_pos, level)
            value = self._project_span(index, wanted[name], vstart, vend, level + 1)
            if value is not _MISSING_TO_NONE:
                out[name] = value
        return out

    def _project_array(
        self,
        index: StructuralIndex,
        tree: ProjectionTree,
        open_pos: int,
        close_pos: int,
        level: int,
    ) -> Any:
        text = index.text
        inner = text[open_pos + 1 : close_pos].strip()
        if not inner:
            if tree.wildcard is not None or tree.indexes:
                return []
            return _MISSING_TO_NONE
        commas = index.array_element_commas(open_pos, close_pos, level)
        bounds = [open_pos] + commas + [close_pos]
        spans = []
        for i in range(len(bounds) - 1):
            estart = _skip_ws(text, bounds[i] + 1)
            eend = bounds[i + 1]
            spans.append((estart, eend))
        if tree.wildcard is not None:
            out = []
            for estart, eend in spans:
                value = self._project_span(index, tree.wildcard, estart, eend, level + 1)
                out.append(None if value is _MISSING_TO_NONE else value)
            return out
        if tree.indexes:
            out = []
            for position in sorted(tree.indexes):
                if position < len(spans):
                    estart, eend = spans[position]
                    value = self._project_span(
                        index, tree.indexes[position], estart, eend, level + 1
                    )
                    out.append(None if value is _MISSING_TO_NONE else value)
            return out
        return _MISSING_TO_NONE


class _MissingToNone:
    """Sentinel: projection could not descend (object member is omitted,
    array element becomes None)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<missing>"


_MISSING_TO_NONE = _MissingToNone()


def _skip_ws(text: str, pos: int) -> int:
    while pos < len(text) and text[pos] in " \t\r\n":
        pos += 1
    return pos


def parse_projected(text: str, projection: Iterable[JsonPath | str]) -> Any:
    """One-shot projected parse (no cross-record speculation)."""
    return MisonParser(projection).parse_projected(text)
