"""Type- and structure-aware fast parsing (tutorial §4.2).

- :mod:`repro.parsing.structural` — Mison's bit-parallel structural index;
- :mod:`repro.parsing.mison` — projected parsing with speculation;
- :mod:`repro.parsing.projection` — projection tries + reference semantics;
- :mod:`repro.parsing.fadjs` — Fad.js-style speculative stream decoding.
"""

from repro.parsing.projection import ProjectionTree, apply_projection, project_value
from repro.parsing.structural import StructuralIndex
from repro.parsing.mison import MisonParser, MisonStats, parse_projected
from repro.parsing.fadjs import (
    FadStats,
    ShapeTemplate,
    SpeculativeDecoder,
    TemplateCompileError,
    compile_template,
    decode_stream,
)
from repro.parsing.fadjs_encode import (
    EncodeStats,
    EncodeTemplate,
    SpeculativeEncoder,
    compile_encode_template,
    encode_shape_key,
    encode_stream,
)

__all__ = [
    "EncodeStats",
    "EncodeTemplate",
    "SpeculativeEncoder",
    "compile_encode_template",
    "encode_shape_key",
    "encode_stream",
    "ProjectionTree",
    "apply_projection",
    "project_value",
    "StructuralIndex",
    "MisonParser",
    "MisonStats",
    "parse_projected",
    "FadStats",
    "ShapeTemplate",
    "SpeculativeDecoder",
    "TemplateCompileError",
    "compile_template",
    "decode_stream",
]
