"""Projection specifications and the reference projection semantics.

A *projection* is a set of paths an analytics task actually reads — the
tutorial's §4.2 observation ("most applications never use all the fields
of input objects") is what both Mison and Fad.js exploit.  This module
defines the projection trie shared by the fast parsers and
:func:`apply_projection`, the obviously-correct reference implementation
that the Mison-style parser is property-tested against (DESIGN.md
invariant 4).

Projection semantics (chosen to be implementable both on parsed values
and on raw text):

- a terminal trie node captures the whole subtree;
- objects keep only projected members that are *present*;
- arrays under ``[*]`` keep **all** elements (positions preserved), each
  projected recursively; an element the projection cannot enter becomes
  ``None``;
- a scalar where the projection expects structure disappears (objects
  omit the member).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.errors import JsonError
from repro.jsonvalue.path import Field, Index, JsonPath, Wildcard

_MISSING = object()


@dataclass
class ProjectionTree:
    """A trie over path steps; shared by reference and Mison projection."""

    terminal: bool = False
    fields: dict = field(default_factory=dict)  # name -> ProjectionTree
    wildcard: Optional["ProjectionTree"] = None
    indexes: dict = field(default_factory=dict)  # position -> ProjectionTree

    @classmethod
    def from_paths(cls, paths: Iterable[JsonPath | str]) -> "ProjectionTree":
        root = cls()
        count = 0
        for path in paths:
            count += 1
            if isinstance(path, str):
                path = JsonPath.parse(path)
            node = root
            for step in path.steps:
                if node.terminal:
                    break  # a shorter captured path subsumes this one
                if isinstance(step, Field):
                    node = node.fields.setdefault(step.name, cls())
                elif isinstance(step, Wildcard):
                    if node.wildcard is None:
                        node.wildcard = cls()
                    node = node.wildcard
                elif isinstance(step, Index):
                    node = node.indexes.setdefault(step.position, cls())
                else:  # pragma: no cover
                    raise JsonError(f"unsupported projection step {step!r}")
            else:
                node.terminal = True
                # A terminal subsumes any deeper paths below it.
                node.fields.clear()
                node.wildcard = None
                node.indexes.clear()
        if not count:
            raise JsonError("a projection needs at least one path")
        return root

    @property
    def max_depth(self) -> int:
        """Deepest step count — how many index levels Mison must build."""
        depths = [1 + child.max_depth for child in self.fields.values()]
        depths.extend(1 + child.max_depth for child in self.indexes.values())
        if self.wildcard is not None:
            depths.append(1 + self.wildcard.max_depth)
        return max(depths, default=0)


def project_value(tree: ProjectionTree, value: Any) -> Any:
    """Apply a projection trie to a parsed value (reference semantics)."""
    result = _project(tree, value)
    return None if result is _MISSING else result


def _project(tree: ProjectionTree, value: Any) -> Any:
    if tree.terminal:
        return value
    if isinstance(value, dict):
        out = {}
        for name, subtree in tree.fields.items():
            if name in value:
                projected = _project(subtree, value[name])
                if projected is not _MISSING:
                    out[name] = projected
        return out
    if isinstance(value, list):
        if tree.wildcard is not None:
            return [
                None if (p := _project(tree.wildcard, elem)) is _MISSING else p
                for elem in value
            ]
        if tree.indexes:
            out_list: list[Any] = []
            for position in sorted(tree.indexes):
                if position < len(value):
                    projected = _project(tree.indexes[position], value[position])
                    out_list.append(None if projected is _MISSING else projected)
            return out_list
        return _MISSING
    return _MISSING


def apply_projection(document: Any, paths: Iterable[JsonPath | str]) -> Any:
    """Project a parsed document onto ``paths`` (parse-then-project)."""
    return project_value(ProjectionTree.from_paths(paths), document)
