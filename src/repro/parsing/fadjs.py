"""Fad.js-style speculative JSON decoding (Bonetta & Brantner, VLDB '17).

Fad.js is "a speculative, JIT-based JSON encoder and decoder" that
"exploits data access patterns to optimize both encoding and decoding".
Its core bet: in a stream, consecutive objects usually have **constant
structure** — same keys, same order, same value kinds — so the decoder can
compile a *shape-specialised* fast path and only fall back to the generic
parser when the speculation fails.

The reproduction maps Graal.js inline caches onto a portable mechanism:

- the first time a shape is seen, the record is parsed generically and a
  **template** is compiled from it: a regular expression that matches any
  record with the same constant structure, with capture groups only for
  the scalar values (plus per-group converters);
- an **inline cache** of templates (monomorphic → polymorphic, MRU order,
  bounded size) is probed on each record; a regex match *is* the decode —
  no tokenisation, no structural scan;
- records containing arrays (variable length → not constant structure)
  or exotic escapes are never speculated: they always take the slow path,
  like Fad.js bailing out to the runtime parser;
- every miss/deopt falls back to the generic parser and (re)learns.

``decode`` is result-identical to the generic parser (DESIGN.md
invariant 5); only the speed differs.  Lazy *partial* access — Fad.js
skips fields applications never read — comes from combining a template
with a projection: non-requested capture groups are simply never
converted.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Optional

from repro.jsonvalue.parser import parse

# Scalar capture patterns: strings (with escapes), numbers, literals.
_STRING_PATTERN = r'"((?:[^"\\\x00-\x1f]|\\.)*)"'
_NUMBER_PATTERN = r"(-?(?:0|[1-9]\d*)(?:\.\d+)?(?:[eE][+-]?\d+)?)"
_LITERAL_PATTERN = r"(true|false|null)"

_LITERALS = {"true": True, "false": False, "null": None}
_ESCAPE_RE = re.compile(r"\\")


def _convert_string(raw: str) -> str:
    if _ESCAPE_RE.search(raw) is None:
        return raw
    # Rare path: delegate escape decoding to the real lexer.
    from repro.jsonvalue.lexer import _Scanner

    scanner = _Scanner(f'"{raw}"')
    token = scanner.scan_string()
    assert isinstance(token.value, str)
    return token.value


def _convert_number(raw: str) -> Any:
    if "." in raw or "e" in raw or "E" in raw:
        return float(raw)
    return int(raw)


def _convert_literal(raw: str) -> Any:
    return _LITERALS[raw]


@dataclass
class ShapeTemplate:
    """A compiled constant-structure fast path."""

    regex: re.Pattern[str]
    # (dotted key path, converter) per capture group, in group order.
    slots: list[tuple[tuple[str, ...], Callable[[str], Any]]]
    key_paths: list[tuple[str, ...]]  # full shape, for rebuild
    # Paths of object-valued keys, parents first.  Slots only materialise
    # the dicts on the way to a scalar, so an {} subtree (no slots under
    # it) must be created explicitly or the decode silently drops it.
    object_paths: list[tuple[str, ...]]

    def try_decode(self, text: str) -> Optional[dict]:
        m = self.regex.match(text)
        if m is None:
            return None
        root: dict[str, Any] = {}
        for path in self.object_paths:
            node = root
            for step in path:
                node = node.setdefault(step, {})
        groups = m.groups()
        for (path, convert), raw in zip(self.slots, groups):
            node = root
            for step in path[:-1]:
                node = node.setdefault(step, {})
            node[path[-1]] = convert(raw)
        return root


class TemplateCompileError(Exception):
    """Shape not speculable (arrays, non-object roots, …)."""


def compile_template(value: Any) -> ShapeTemplate:
    """Compile a template from a freshly parsed record.

    Only objects whose transitive values are objects or scalars are
    speculable; arrays make the structure variable-length and raise.
    """
    if not isinstance(value, dict):
        raise TemplateCompileError("only object records are speculable")
    pattern_parts: list[str] = [r"\s*"]
    slots: list[tuple[tuple[str, ...], Callable[[str], Any]]] = []
    key_paths: list[tuple[str, ...]] = []
    object_paths: list[tuple[str, ...]] = []

    def emit_object(obj: dict, prefix: tuple[str, ...]) -> None:
        pattern_parts.append(r"\{\s*")
        for i, (key, val) in enumerate(obj.items()):
            if i:
                pattern_parts.append(r",\s*")
            pattern_parts.append(re.escape(f'"{key}"') + r"\s*:\s*")
            path = prefix + (key,)
            key_paths.append(path)
            if isinstance(val, dict):
                object_paths.append(path)
                emit_object(val, path)
            elif isinstance(val, list):
                raise TemplateCompileError("arrays are not constant-structure")
            elif isinstance(val, str):
                pattern_parts.append(_STRING_PATTERN)
                slots.append((path, _convert_string))
            elif isinstance(val, bool) or val is None:
                pattern_parts.append(_LITERAL_PATTERN)
                slots.append((path, _convert_literal))
            else:
                pattern_parts.append(_NUMBER_PATTERN)
                slots.append((path, _convert_number))
            pattern_parts.append(r"\s*")
        pattern_parts.append(r"\}")

    emit_object(value, ())
    pattern_parts.append(r"\s*$")
    regex = re.compile("".join(pattern_parts))
    return ShapeTemplate(
        regex=regex, slots=slots, key_paths=key_paths, object_paths=object_paths
    )


@dataclass
class FadStats:
    records: int = 0
    fast_path_hits: int = 0
    misses: int = 0  # probed templates but none matched
    deopts: int = 0  # slow-path parses (first sight, miss, or unspeculable)
    templates_compiled: int = 0

    @property
    def hit_rate(self) -> float:
        return self.fast_path_hits / self.records if self.records else 0.0


class SpeculativeDecoder:
    """A stream decoder with a bounded inline cache of shape templates."""

    def __init__(self, *, cache_size: int = 4) -> None:
        self.cache_size = cache_size
        self._templates: list[ShapeTemplate] = []  # MRU order
        self.stats = FadStats()

    def decode(self, text: str) -> Any:
        """Decode one record; identical results to the generic parser."""
        self.stats.records += 1
        probed = False
        for i, template in enumerate(self._templates):
            probed = True
            result = template.try_decode(text)
            if result is not None:
                self.stats.fast_path_hits += 1
                if i:  # move to front (MRU)
                    self._templates.insert(0, self._templates.pop(i))
                return result
        if probed:
            self.stats.misses += 1
        # Slow path: generic parse, then (re)learn the shape.
        self.stats.deopts += 1
        value = parse(text)
        self._learn(value)
        return value

    def decode_stream(self, lines: Iterable[str]) -> Iterator[Any]:
        for line in lines:
            if line.strip():
                yield self.decode(line)

    def _learn(self, value: Any) -> None:
        try:
            template = compile_template(value)
        except TemplateCompileError:
            return
        self.stats.templates_compiled += 1
        self._templates.insert(0, template)
        del self._templates[self.cache_size :]


def decode_stream(
    lines: Iterable[str], *, cache_size: int = 4
) -> tuple[list[Any], FadStats]:
    """Decode a whole stream; returns values and speculation statistics."""
    decoder = SpeculativeDecoder(cache_size=cache_size)
    values = list(decoder.decode_stream(lines))
    return values, decoder.stats
