"""Fad.js-style speculative JSON *encoding*.

Fad.js optimises "both encoding and decoding" (tutorial §4.2).  On the
encoding side the bet is the same: streams emit objects of constant
structure, so the serializer can precompute every static byte of the
output — braces, quoted keys, colons, commas — once per *shape*, and per
record only convert the scalar values into the holes:

- :func:`encode_shape_key` fingerprints a value's structure (keys in
  order, scalar kinds); arrays and non-object roots are not speculable,
  exactly as in the decoder;
- :class:`EncodeTemplate` holds the precomputed static segments and one
  converter per value slot;
- :class:`SpeculativeEncoder` keeps a shape-keyed cache; hits interleave
  segments with converted values in a single ``str.join``; misses fall
  back to the generic serializer and learn the new shape.

The output is byte-identical to :func:`repro.jsonvalue.serializer.dumps`
(compact mode) — property-tested — so speculation is again observable only
as speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

from repro.jsonvalue.model import is_integer_value
from repro.jsonvalue.serializer import dumps, escape_string

# Scalar slot kinds.
_KIND_STRING = "s"
_KIND_NUMBER = "n"
_KIND_LITERAL = "l"  # true/false/null

_LITERAL_TEXT = {True: "true", False: "false", None: "null"}


def encode_shape_key(value: Any) -> Optional[tuple]:
    """Structure fingerprint, or ``None`` when the value is not speculable."""
    if not isinstance(value, dict):
        return None
    parts: list = []
    for key, v in value.items():
        if isinstance(v, dict):
            inner = encode_shape_key(v)
            if inner is None:
                return None
            parts.append((key, inner))
        elif isinstance(v, list):
            return None  # variable length: not constant structure
        elif isinstance(v, str):
            parts.append((key, _KIND_STRING))
        elif isinstance(v, bool) or v is None:
            parts.append((key, _KIND_LITERAL))
        else:
            parts.append((key, _KIND_NUMBER))
    return tuple(parts)


def _convert_number(value: Any) -> str:
    if is_integer_value(value):
        return str(value)
    return repr(value)


def _convert_string(value: str) -> str:
    return escape_string(value)


def _convert_literal(value: Any) -> str:
    return _LITERAL_TEXT[value]


_CONVERTERS: dict[str, Callable[[Any], str]] = {
    _KIND_STRING: _convert_string,
    _KIND_NUMBER: _convert_number,
    _KIND_LITERAL: _convert_literal,
}


@dataclass
class EncodeTemplate:
    """Precompiled encoder for one shape."""

    segments: list  # len(slots) + 1 static strings
    slots: list  # (path tuple, converter) per hole

    def encode(self, value: dict) -> str:
        parts = [self.segments[0]]
        for (path, convert), segment in zip(self.slots, self.segments[1:]):
            v = value
            for step in path:
                v = v[step]
            parts.append(convert(v))
            parts.append(segment)
        return "".join(parts)


def compile_encode_template(value: dict) -> EncodeTemplate:
    """Build the template from one sample (its shape must be speculable)."""
    segments: list[str] = []
    slots: list[tuple[tuple, Callable[[Any], str]]] = []
    current: list[str] = []

    def static(text: str) -> None:
        current.append(text)

    def hole(path: tuple, kind: str) -> None:
        segments.append("".join(current))
        current.clear()
        slots.append((path, _CONVERTERS[kind]))

    def walk(obj: dict, prefix: tuple) -> None:
        static("{")
        for i, (key, v) in enumerate(obj.items()):
            if i:
                static(",")
            static(escape_string(key) + ":")
            path = prefix + (key,)
            if isinstance(v, dict):
                walk(v, path)
            elif isinstance(v, str):
                hole(path, _KIND_STRING)
            elif isinstance(v, bool) or v is None:
                hole(path, _KIND_LITERAL)
            else:
                hole(path, _KIND_NUMBER)
        static("}")

    walk(value, ())
    segments.append("".join(current))
    return EncodeTemplate(segments=segments, slots=slots)


@dataclass
class EncodeStats:
    records: int = 0
    fast_path_hits: int = 0
    deopts: int = 0
    templates_compiled: int = 0

    @property
    def hit_rate(self) -> float:
        return self.fast_path_hits / self.records if self.records else 0.0


class SpeculativeEncoder:
    """A stream encoder with a bounded shape-template cache."""

    def __init__(self, *, cache_size: int = 8) -> None:
        self.cache_size = cache_size
        self._templates: dict[tuple, EncodeTemplate] = {}
        self.stats = EncodeStats()

    def encode(self, value: Any) -> str:
        """Serialize one value; byte-identical to compact ``dumps``."""
        self.stats.records += 1
        key = encode_shape_key(value)
        if key is not None:
            template = self._templates.get(key)
            if template is not None:
                self.stats.fast_path_hits += 1
                return template.encode(value)
        self.stats.deopts += 1
        text = dumps(value)
        if key is not None and len(self._templates) < self.cache_size:
            self._templates[key] = compile_encode_template(value)
            self.stats.templates_compiled += 1
        return text

    def encode_stream(self, values: Iterable[Any]) -> Iterable[str]:
        for value in values:
            yield self.encode(value)


def encode_stream(values: Iterable[Any], *, cache_size: int = 8) -> tuple[list, EncodeStats]:
    """Encode a whole stream; returns the lines and the statistics."""
    encoder = SpeculativeEncoder(cache_size=cache_size)
    lines = list(encoder.encode_stream(values))
    return lines, encoder.stats
