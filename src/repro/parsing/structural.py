"""Mison-style structural index (Li et al., VLDB '17).

Mison "exploits AVX instructions to speed up data parsing and discarding
unused objects … it infers structural information of data on the fly in
order to detect and prune parts of the data that are not needed".

The reproduction keeps Mison's *bit-parallel* design with Python's
arbitrary-precision integers playing the role of SIMD words — bitwise AND/
OR/XOR/shift on a bigint operate on the whole document at machine-word
granularity inside CPython, preserving the algorithm's word-level
semantics (the substitution DESIGN.md documents):

1. **character bitmaps** for ``\\`` ``"`` ``:`` ``,`` ``{`` ``}`` ``[`` ``]``
   (bit *i* set iff ``text[i]`` is that character);
2. the **structural-quote bitmap**: quotes minus escaped quotes, via the
   classic backslash-run parity computation;
3. the **string mask** (interior of string literals), from the structural
   quotes by prefix-XOR parity — Mison's carryless-multiply step;
4. **masked structural bitmaps**: colons/commas/braces/brackets *outside*
   strings;
5. **leveled bitmaps**: colon/comma bitmaps per nesting level, built only
   up to the depth the projection needs (Mison's key cost saving).

The index exposes positional queries used by the projected parser:
top-level member colons of an object span, element commas of an array
span, and matching-bracket lookup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import JsonError


def _char_bitmap(text: str, ch: str) -> int:
    """Bit *i* set iff ``text[i] == ch`` (bigint as an n-bit SIMD word)."""
    bitmap = 0
    start = text.find(ch)
    while start != -1:
        bitmap |= 1 << start
        start = text.find(ch, start + 1)
    return bitmap


def _structural_quotes(quote_bitmap: int, backslash_bitmap: int, length: int) -> int:
    """Quotes that really delimit strings: drop quotes escaped by an odd
    run of backslashes (Mison step 2)."""
    if not backslash_bitmap:
        return quote_bitmap
    # A quote at i is escaped iff the maximal backslash run ending at i-1
    # has odd length.  Compute run parities bit-parallel: a backslash run
    # starts where a backslash has no backslash predecessor.
    starts = backslash_bitmap & ~(backslash_bitmap << 1)
    escaped = 0
    run_start = starts
    while run_start:
        low = run_start & -run_start
        i = low.bit_length() - 1
        # Extend the run from position i.
        j = i
        while (backslash_bitmap >> j) & 1:
            j += 1
        run_length = j - i
        if run_length % 2 == 1 and (quote_bitmap >> j) & 1:
            escaped |= 1 << j
        run_start &= run_start - 1
        # Skip any start bits inside this run (there are none by construction).
    return quote_bitmap & ~escaped


def _string_mask(structural_quotes: int, length: int) -> int:
    """Bit *i* set iff position *i* lies strictly inside a string literal.

    Prefix-XOR over quote bits (Mison's carryless multiplication): between
    the (2k+1)-th and (2k+2)-th structural quote every bit is set.
    """
    mask = 0
    quotes = structural_quotes
    open_pos = -1
    while quotes:
        low = quotes & -quotes
        pos = low.bit_length() - 1
        if open_pos < 0:
            open_pos = pos
        else:
            # Interior of the literal: positions open_pos+1 .. pos-1,
            # and the delimiters themselves are also "in string" for
            # masking purposes (they are not structural punctuation).
            span = pos - open_pos + 1
            mask |= ((1 << span) - 1) << open_pos
            open_pos = -1
        quotes &= quotes - 1
    if open_pos >= 0:
        raise JsonError("unbalanced string quotes in document")
    return mask


@dataclass
class StructuralIndex:
    """The leveled structural index of one JSON text."""

    text: str
    string_mask: int
    colons: int
    commas: int
    open_braces: int
    close_braces: int
    open_brackets: int
    close_brackets: int
    # per-level bitmaps, index 0 = depth 1 (inside the top-level container)
    colon_levels: list[int]
    comma_levels: list[int]
    max_level: int

    @classmethod
    def build(cls, text: str, *, levels: int = 1) -> "StructuralIndex":
        """Build the index with leveled bitmaps down to ``levels``."""
        backslash = _char_bitmap(text, "\\")
        quotes = _char_bitmap(text, '"')
        structural_quotes = _structural_quotes(quotes, backslash, len(text))
        string_mask = _string_mask(structural_quotes, len(text))
        keep = ~string_mask

        colons = _char_bitmap(text, ":") & keep
        commas = _char_bitmap(text, ",") & keep
        open_braces = _char_bitmap(text, "{") & keep
        close_braces = _char_bitmap(text, "}") & keep
        open_brackets = _char_bitmap(text, "[") & keep
        close_brackets = _char_bitmap(text, "]") & keep

        colon_levels, comma_levels = cls._leveled(
            text,
            colons,
            commas,
            open_braces | open_brackets,
            close_braces | close_brackets,
            levels,
        )
        return cls(
            text=text,
            string_mask=string_mask,
            colons=colons,
            commas=commas,
            open_braces=open_braces,
            close_braces=close_braces,
            open_brackets=open_brackets,
            close_brackets=close_brackets,
            colon_levels=colon_levels,
            comma_levels=comma_levels,
            max_level=levels,
        )

    @staticmethod
    def _leveled(
        text: str,
        colons: int,
        commas: int,
        opens: int,
        closes: int,
        levels: int,
    ) -> tuple[list[int], list[int]]:
        """Distribute structural colons/commas over nesting levels.

        One pass over the *set bits* of the merged punctuation bitmaps —
        the document body is never re-scanned (only punctuation positions
        are visited, which is the Mison property).
        """
        colon_levels = [0] * levels
        comma_levels = [0] * levels
        merged = colons | commas | opens | closes
        depth = 0
        bits = merged
        while bits:
            low = bits & -bits
            pos = low.bit_length() - 1
            if (opens >> pos) & 1:
                depth += 1
            elif (closes >> pos) & 1:
                depth -= 1
                if depth < 0:
                    raise JsonError("unbalanced brackets in document")
            elif (colons >> pos) & 1:
                if 1 <= depth <= levels:
                    colon_levels[depth - 1] |= low
            else:  # comma
                if 1 <= depth <= levels:
                    comma_levels[depth - 1] |= low
            bits &= bits - 1
        if depth != 0:
            raise JsonError("unbalanced brackets in document")
        return colon_levels, comma_levels

    # ------------------------------------------------------------------
    # positional queries
    # ------------------------------------------------------------------

    def matching_close(self, open_pos: int) -> int:
        """Position of the bracket matching the opener at ``open_pos``."""
        opens = self.open_braces | self.open_brackets
        closes = self.close_braces | self.close_brackets
        if not ((opens >> open_pos) & 1):
            raise JsonError(f"no structural opener at position {open_pos}")
        depth = 0
        bits = (opens | closes) >> open_pos
        pos = open_pos
        while bits:
            low = bits & -bits
            offset = low.bit_length() - 1
            pos = open_pos + offset
            if (opens >> pos) & 1:
                depth += 1
            else:
                depth -= 1
                if depth == 0:
                    return pos
            bits &= bits - 1
        raise JsonError(f"no matching close for opener at {open_pos}")

    def bits_in_span(self, bitmap: int, start: int, end: int) -> Iterator[int]:
        """Positions of set bits of ``bitmap`` within [start, end)."""
        window = (bitmap >> start) & ((1 << (end - start)) - 1)
        while window:
            low = window & -window
            yield start + low.bit_length() - 1
            window &= window - 1

    def object_member_colons(self, open_pos: int, close_pos: int, level: int) -> list[int]:
        """Colons of the direct members of the object spanning [open, close]."""
        if level > self.max_level:
            raise JsonError(
                f"index built to level {self.max_level}, need {level}"
            )
        return list(self.bits_in_span(self.colon_levels[level - 1], open_pos, close_pos))

    def array_element_commas(self, open_pos: int, close_pos: int, level: int) -> list[int]:
        """Commas separating direct elements of the array span."""
        if level > self.max_level:
            raise JsonError(
                f"index built to level {self.max_level}, need {level}"
            )
        return list(self.bits_in_span(self.comma_levels[level - 1], open_pos, close_pos))

    def key_before_colon(self, colon_pos: int) -> str:
        """Decode the member name whose colon sits at ``colon_pos``."""
        text = self.text
        end = colon_pos - 1
        while end >= 0 and text[end] in " \t\r\n":
            end -= 1
        if end < 0 or text[end] != '"':
            raise JsonError(f"no member name before colon at {colon_pos}")
        # Walk back to the opening quote, skipping escaped quotes using
        # the string mask: the opening quote is the nearest quote whose
        # predecessor position is NOT inside the string.
        start = end - 1
        while start >= 0:
            if text[start] == '"' and not ((self.string_mask >> (start - 1)) & 1 if start else False):
                break
            start -= 1
        from repro.jsonvalue.lexer import _Scanner

        scanner = _Scanner(text)
        scanner.pos = start
        token = scanner.scan_string()
        assert isinstance(token.value, str)
        return token.value

    def value_span(self, colon_pos: int, container_close: int, level: int) -> tuple[int, int]:
        """The [start, end) span of the value following ``colon_pos``.

        ``container_close`` is the position of the enclosing container's
        closing brace; the value ends at the next same-level comma or at
        the close.
        """
        text = self.text
        start = colon_pos + 1
        while text[start] in " \t\r\n":
            start += 1
        if level <= self.max_level:
            for comma in self.bits_in_span(
                self.comma_levels[level - 1], colon_pos, container_close
            ):
                return start, comma
            return start, container_close
        raise JsonError(f"index built to level {self.max_level}, need {level}")
