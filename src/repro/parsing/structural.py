"""Mison-style structural index (Li et al., VLDB '17).

Mison "exploits AVX instructions to speed up data parsing and discarding
unused objects … it infers structural information of data on the fly in
order to detect and prune parts of the data that are not needed".

The reproduction keeps Mison's *bit-parallel* design with Python's
arbitrary-precision integers playing the role of SIMD words — bitwise AND/
OR/XOR/shift on a bigint operate on the whole document at machine-word
granularity inside CPython, preserving the algorithm's word-level
semantics (the substitution DESIGN.md documents):

1. **character bitmaps** for ``\\`` ``"`` ``:`` ``,`` ``{`` ``}`` ``[`` ``]``
   (bit *i* set iff ``text[i]`` is that character);
2. the **structural-quote bitmap**: quotes minus escaped quotes, via the
   classic backslash-run parity computation;
3. the **string mask** (interior of string literals), from the structural
   quotes by prefix-XOR parity — Mison's carryless-multiply step;
4. **masked structural bitmaps**: colons/commas/braces/brackets *outside*
   strings;
5. **leveled bitmaps**: colon/comma bitmaps per nesting level, built only
   up to the depth the projection needs (Mison's key cost saving).

The index exposes positional queries used by the projected parser:
top-level member colons of an object span, element commas of an array
span, and matching-bracket lookup.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import JsonError
from repro.jsonvalue.lexer import (
    FULL_STRING_BODY_PATTERN_BYTES,
    INT_PATTERN_BYTES,
)


def _char_bitmap(text: str, ch: str) -> int:
    """Bit *i* set iff ``text[i] == ch`` (bigint as an n-bit SIMD word)."""
    bitmap = 0
    start = text.find(ch)
    while start != -1:
        bitmap |= 1 << start
        start = text.find(ch, start + 1)
    return bitmap


def _structural_quotes(quote_bitmap: int, backslash_bitmap: int, length: int) -> int:
    """Quotes that really delimit strings: drop quotes escaped by an odd
    run of backslashes (Mison step 2)."""
    if not backslash_bitmap:
        return quote_bitmap
    # A quote at i is escaped iff the maximal backslash run ending at i-1
    # has odd length.  Compute run parities bit-parallel: a backslash run
    # starts where a backslash has no backslash predecessor.
    starts = backslash_bitmap & ~(backslash_bitmap << 1)
    escaped = 0
    run_start = starts
    while run_start:
        low = run_start & -run_start
        i = low.bit_length() - 1
        # Extend the run from position i.
        j = i
        while (backslash_bitmap >> j) & 1:
            j += 1
        run_length = j - i
        if run_length % 2 == 1 and (quote_bitmap >> j) & 1:
            escaped |= 1 << j
        run_start &= run_start - 1
        # Skip any start bits inside this run (there are none by construction).
    return quote_bitmap & ~escaped


def _string_mask(structural_quotes: int, length: int) -> int:
    """Bit *i* set iff position *i* lies strictly inside a string literal.

    Prefix-XOR over quote bits (Mison's carryless multiplication): between
    the (2k+1)-th and (2k+2)-th structural quote every bit is set.
    """
    mask = 0
    quotes = structural_quotes
    open_pos = -1
    while quotes:
        low = quotes & -quotes
        pos = low.bit_length() - 1
        if open_pos < 0:
            open_pos = pos
        else:
            # Interior of the literal: positions open_pos+1 .. pos-1,
            # and the delimiters themselves are also "in string" for
            # masking purposes (they are not structural punctuation).
            span = pos - open_pos + 1
            mask |= ((1 << span) - 1) << open_pos
            open_pos = -1
        quotes &= quotes - 1
    if open_pos >= 0:
        raise JsonError("unbalanced string quotes in document")
    return mask


@dataclass
class StructuralIndex:
    """The leveled structural index of one JSON text."""

    text: str
    string_mask: int
    colons: int
    commas: int
    open_braces: int
    close_braces: int
    open_brackets: int
    close_brackets: int
    # per-level bitmaps, index 0 = depth 1 (inside the top-level container)
    colon_levels: list[int]
    comma_levels: list[int]
    max_level: int

    @classmethod
    def build(cls, text: str, *, levels: int = 1) -> "StructuralIndex":
        """Build the index with leveled bitmaps down to ``levels``."""
        backslash = _char_bitmap(text, "\\")
        quotes = _char_bitmap(text, '"')
        structural_quotes = _structural_quotes(quotes, backslash, len(text))
        string_mask = _string_mask(structural_quotes, len(text))
        keep = ~string_mask

        colons = _char_bitmap(text, ":") & keep
        commas = _char_bitmap(text, ",") & keep
        open_braces = _char_bitmap(text, "{") & keep
        close_braces = _char_bitmap(text, "}") & keep
        open_brackets = _char_bitmap(text, "[") & keep
        close_brackets = _char_bitmap(text, "]") & keep

        colon_levels, comma_levels = cls._leveled(
            text,
            colons,
            commas,
            open_braces | open_brackets,
            close_braces | close_brackets,
            levels,
        )
        return cls(
            text=text,
            string_mask=string_mask,
            colons=colons,
            commas=commas,
            open_braces=open_braces,
            close_braces=close_braces,
            open_brackets=open_brackets,
            close_brackets=close_brackets,
            colon_levels=colon_levels,
            comma_levels=comma_levels,
            max_level=levels,
        )

    @staticmethod
    def _leveled(
        text: str,
        colons: int,
        commas: int,
        opens: int,
        closes: int,
        levels: int,
    ) -> tuple[list[int], list[int]]:
        """Distribute structural colons/commas over nesting levels.

        One pass over the *set bits* of the merged punctuation bitmaps —
        the document body is never re-scanned (only punctuation positions
        are visited, which is the Mison property).
        """
        colon_levels = [0] * levels
        comma_levels = [0] * levels
        merged = colons | commas | opens | closes
        depth = 0
        bits = merged
        while bits:
            low = bits & -bits
            pos = low.bit_length() - 1
            if (opens >> pos) & 1:
                depth += 1
            elif (closes >> pos) & 1:
                depth -= 1
                if depth < 0:
                    raise JsonError("unbalanced brackets in document")
            elif (colons >> pos) & 1:
                if 1 <= depth <= levels:
                    colon_levels[depth - 1] |= low
            else:  # comma
                if 1 <= depth <= levels:
                    comma_levels[depth - 1] |= low
            bits &= bits - 1
        if depth != 0:
            raise JsonError("unbalanced brackets in document")
        return colon_levels, comma_levels

    # ------------------------------------------------------------------
    # positional queries
    # ------------------------------------------------------------------

    def matching_close(self, open_pos: int) -> int:
        """Position of the bracket matching the opener at ``open_pos``."""
        opens = self.open_braces | self.open_brackets
        closes = self.close_braces | self.close_brackets
        if not ((opens >> open_pos) & 1):
            raise JsonError(f"no structural opener at position {open_pos}")
        depth = 0
        bits = (opens | closes) >> open_pos
        pos = open_pos
        while bits:
            low = bits & -bits
            offset = low.bit_length() - 1
            pos = open_pos + offset
            if (opens >> pos) & 1:
                depth += 1
            else:
                depth -= 1
                if depth == 0:
                    return pos
            bits &= bits - 1
        raise JsonError(f"no matching close for opener at {open_pos}")

    def bits_in_span(self, bitmap: int, start: int, end: int) -> Iterator[int]:
        """Positions of set bits of ``bitmap`` within [start, end)."""
        window = (bitmap >> start) & ((1 << (end - start)) - 1)
        while window:
            low = window & -window
            yield start + low.bit_length() - 1
            window &= window - 1

    def object_member_colons(self, open_pos: int, close_pos: int, level: int) -> list[int]:
        """Colons of the direct members of the object spanning [open, close]."""
        if level > self.max_level:
            raise JsonError(
                f"index built to level {self.max_level}, need {level}"
            )
        return list(self.bits_in_span(self.colon_levels[level - 1], open_pos, close_pos))

    def array_element_commas(self, open_pos: int, close_pos: int, level: int) -> list[int]:
        """Commas separating direct elements of the array span."""
        if level > self.max_level:
            raise JsonError(
                f"index built to level {self.max_level}, need {level}"
            )
        return list(self.bits_in_span(self.comma_levels[level - 1], open_pos, close_pos))

    def key_before_colon(self, colon_pos: int) -> str:
        """Decode the member name whose colon sits at ``colon_pos``."""
        text = self.text
        end = colon_pos - 1
        while end >= 0 and text[end] in " \t\r\n":
            end -= 1
        if end < 0 or text[end] != '"':
            raise JsonError(f"no member name before colon at {colon_pos}")
        # Walk back to the opening quote, skipping escaped quotes using
        # the string mask: the opening quote is the nearest quote whose
        # predecessor position is NOT inside the string.
        start = end - 1
        while start >= 0:
            if text[start] == '"' and not ((self.string_mask >> (start - 1)) & 1 if start else False):
                break
            start -= 1
        from repro.jsonvalue.lexer import _Scanner

        scanner = _Scanner(text)
        scanner.pos = start
        token = scanner.scan_string()
        assert isinstance(token.value, str)
        return token.value

    def value_span(self, colon_pos: int, container_close: int, level: int) -> tuple[int, int]:
        """The [start, end) span of the value following ``colon_pos``.

        ``container_close`` is the position of the enclosing container's
        closing brace; the value ends at the next same-level comma or at
        the close.
        """
        text = self.text
        start = colon_pos + 1
        while text[start] in " \t\r\n":
            start += 1
        if level <= self.max_level:
            for comma in self.bits_in_span(
                self.comma_levels[level - 1], colon_pos, container_close
            ):
                return start, comma
            return start, container_close
        raise JsonError(f"index built to level {self.max_level}, need {level}")

# ---------------------------------------------------------------------------
# Bytes-native top-level splitter (intra-document parallelism).
#
# The line-parallel pipeline dies on one huge document: a single 500 MB
# record serializes the whole fold.  The splitter carves the top-level
# container of an undecoded byte buffer (mmap, shared memory, bytes)
# into contiguous *subtree ranges* that workers can type independently
# with ``encode_bytes``-class machines, to be reassembled through the
# merge monoid.
#
# Two carving strategies share one contract:
#
# - :func:`scan_depth1_spans` — the exact linear pass: one resumable
#   C-speed token search (whole string literals and brackets per match,
#   never per-byte Python) drives a quote/escape-aware depth counter and
#   yields every depth-1 member/element span precisely.  Used below a
#   size threshold and by the edge-case tests.
# - :func:`propose_chunks` — the speculative carver for huge buffers:
#   evenly spaced byte offsets are snapped forward to element-separator
#   shapes (``}<ws>,<ws>{`` and friends) found by C-speed searches, so
#   the parent's split cost is O(workers), not O(bytes).
#
# Both only *propose* a tiling.  Soundness never rests on the proposal:
# every chunk is a byte range that must itself parse as a complete
# element/member list (the worker validates it with the full scan
# machine), the dropped separator bytes are validated against the
# ``<ws>,<ws>`` grammar by construction, and the opener/closer/edge
# whitespace are checked explicitly — so the document bytes are tiled by
# verified regions and any speculation failure (separator bytes found
# inside a string, at the wrong depth, malformed input, …) surfaces as a
# validation failure, never as a silently different type.  The driver
# then falls back to the serial ``encode_bytes`` of the whole document,
# which raises the parser-exact error (or, for under-approximated valid
# shapes, returns the correct type).
# ---------------------------------------------------------------------------

_SPLIT_WS = re.compile(rb"[ \t\n\r]*")
# One token per C-speed search: a whole string literal (escapes
# included; lenient — the typing pass re-validates), or one bracket.
_SPLIT_TOKEN = re.compile(rb'"[^"\\]*(?:\\[^\r\n][^"\\]*)*"|[{}\[\]]')
# Depth-1 scalar tokens, exact lexer grammar (the splitter's spans must
# be exactly the spans the serial machine would scan).
_SPLIT_SCALAR = re.compile(
    b'"' + FULL_STRING_BODY_PATTERN_BYTES + b'"'
    + b"|" + INT_PATTERN_BYTES + rb"(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?"
    + b"|true|false|null"
)
_SPLIT_KEY = re.compile(
    b'"(' + FULL_STRING_BODY_PATTERN_BYTES + b')"' + rb"[ \t\n\r]*:"
)
# Speculative element separators, by element kind.  The bracket/quote
# anchors stay inside the flanking chunks; only the ``<ws>,<ws>`` core
# is dropped, which is what makes the dropped bytes self-validating.
_SEP_RECORD = re.compile(rb"\}[ \t\n\r]*,[ \t\n\r]*\{")
_SEP_ARRAY = re.compile(rb"\][ \t\n\r]*,[ \t\n\r]*\[")
_SEP_MEMBER = re.compile(rb"[\}\]][ \t\n\r]*,[ \t\n\r]*\"")
_SEP_COMMA = re.compile(rb",")
_ANY_BRACKET = re.compile(rb"[{\[]")

_LBRACE, _RBRACE, _LBRACKET, _RBRACKET = 0x7B, 0x7D, 0x5B, 0x5D
_QUOTE, _COMMA = 0x22, 0x2C


@dataclass(frozen=True)
class SubtreeScan:
    """The exact depth-1 carve of one document's byte range.

    ``parts`` holds one tuple per direct child of the top container:
    ``(start, end)`` element value spans for an array,
    ``(key_start, key_body_start, key_body_end, value_start, value_end)``
    for an object — ``key_start`` is the opening quote (so a member span
    runs ``key_start:value_end``), the body span excludes the quotes
    (the shape ``EventTypeEncoder._key_str`` decodes).
    """

    kind: str  # "object" | "array"
    open: int
    close: int
    parts: tuple


def _skip_container(data, pos: int, end: int) -> int:
    """Position just after the bracket matching the opener at ``pos``,
    or ``-1``.  One token-search per string literal or bracket; depth is
    a plain counter, so nesting depth never touches the Python stack."""
    search = _SPLIT_TOKEN.search
    depth = 0
    while True:
        m = search(data, pos, end)
        if m is None:
            return -1
        first = data[m.start()]
        if first == _QUOTE:
            pos = m.end()
            continue
        if first == _LBRACE or first == _LBRACKET:
            depth += 1
        else:
            depth -= 1
            if depth == 0:
                return m.end()
            if depth < 0:
                return -1
        pos = m.end()


def scan_depth1_spans(data, start: int = 0, end: Optional[int] = None):
    """Exact one-pass split of a top-level container into child spans.

    Returns a :class:`SubtreeScan`, or ``None`` when the range is not a
    splittable container document (top-level scalar, malformed shape,
    trailing garbage, …) — the caller then types the range serially, so
    errors and under-approximations resolve exactly as ``encode_bytes``
    would.
    """
    if end is None:
        end = len(data)
    ws = _SPLIT_WS.match
    pos = ws(data, start, end).end()
    if pos >= end:
        return None
    top = data[pos]
    if top == _LBRACE:
        is_object = True
        close_byte = _RBRACE
    elif top == _LBRACKET:
        is_object = False
        close_byte = _RBRACKET
    else:
        return None
    open_ = pos
    pos += 1
    parts = []
    scalar = _SPLIT_SCALAR.match
    key = _SPLIT_KEY.match
    first = True
    close = -1
    while True:
        pos = ws(data, pos, end).end()
        if pos >= end:
            return None
        c = data[pos]
        if first and c == close_byte:
            close = pos
            break
        if is_object:
            km = key(data, pos, end)
            if km is None:
                return None
            key_start = pos
            body_start, body_end = km.span(1)
            pos = ws(data, km.end(), end).end()
            if pos >= end:
                return None
            c = data[pos]
            vstart = pos
            if c == _LBRACE or c == _LBRACKET:
                vend = _skip_container(data, pos, end)
            else:
                sm = scalar(data, pos, end)
                vend = -1 if sm is None else sm.end()
            if vend < 0:
                return None
            parts.append((key_start, body_start, body_end, vstart, vend))
            pos = vend
        else:
            vstart = pos
            if c == _LBRACE or c == _LBRACKET:
                vend = _skip_container(data, pos, end)
            else:
                sm = scalar(data, pos, end)
                vend = -1 if sm is None else sm.end()
            if vend < 0:
                return None
            parts.append((vstart, vend))
            pos = vend
        first = False
        pos = ws(data, pos, end).end()
        if pos >= end:
            return None
        c = data[pos]
        if c == _COMMA:
            pos += 1
            continue
        if c == close_byte:
            close = pos
            break
        return None
    if ws(data, close + 1, end).end() != end:
        return None  # trailing bytes after the document
    return SubtreeScan(
        kind="object" if is_object else "array",
        open=open_,
        close=close,
        parts=tuple(parts),
    )


def document_bounds(data, start: int = 0, end: Optional[int] = None):
    """``(kind, open, close)`` of the top-level container, by the edge
    bytes alone (no interior scan), or ``None``.  Speculative: the
    closer is only *positionally* plausible; chunk validation decides."""
    if end is None:
        end = len(data)
    pos = _SPLIT_WS.match(data, start, end).end()
    if pos >= end:
        return None
    tail = end
    while tail > pos and data[tail - 1] in b" \t\n\r":
        tail -= 1
    close = tail - 1
    if close <= pos:
        return None
    top = data[pos]
    if top == _LBRACE and data[close] == _RBRACE:
        return "object", pos, close
    if top == _LBRACKET and data[close] == _RBRACKET:
        return "array", pos, close
    return None


def propose_chunks(
    data, open_: int, close: int, kind: str, targets: int
) -> Optional[list]:
    """Speculative chunk spans tiling ``(open_, close)`` exclusive.

    Evenly spaced candidate offsets snap forward to the next
    element-separator shape; each returned ``(start, end)`` span should
    parse as a complete element list (array) or member list (object) —
    the typing pass verifies that, so a separator matched inside a
    string or at the wrong depth fails loudly there, never silently.
    Returns ``None`` when fewer than two chunks can be proposed.
    """
    interior_start = open_ + 1
    size = close - interior_start
    if targets < 2 or size < 2:
        return None
    p = _SPLIT_WS.match(data, interior_start, close).end()
    if p >= close:
        return None
    first = data[p]
    drop_comma = False
    if kind == "array":
        if first == _LBRACE:
            sep = _SEP_RECORD
        elif first == _LBRACKET:
            sep = _SEP_ARRAY
        else:
            # A flat scalar array has no interior brackets at all, so
            # every comma is a depth-1 separator; with brackets present
            # a bare comma is hopeless speculation — decline.
            if _ANY_BRACKET.search(data, p, close) is not None:
                return None
            sep = _SEP_COMMA
            drop_comma = True
    else:
        sep = _SEP_MEMBER
    step = max(1, size // targets)
    boundaries = []
    cursor = interior_start + step
    while cursor < close and len(boundaries) < targets - 1:
        m = sep.search(data, cursor, close)
        if m is None:
            break
        if drop_comma:
            cut, resume = m.start(), m.end()
        else:
            cut, resume = m.start() + 1, m.end() - 1
        boundaries.append((cut, resume))
        cursor = max(resume + 1, m.start() + step)
    if not boundaries:
        return None
    chunks = []
    prev = interior_start
    for cut, resume in boundaries:
        chunks.append((prev, cut))
        prev = resume
    chunks.append((prev, close))
    return chunks


def propose_spine(data, open_: int, close: int):
    """Speculative descent for ``{"…": …, "big": [huge]}`` shapes.

    When a top-level *object* cannot chunk (few members, one dominant
    container value), the parallelism lives one level down.  This
    proposes: the span of leading members (``None`` when the big member
    is first), the decoded-key *byte* span of the dominant member, and
    the value span — valid only when the dominant container member is
    the **last** member (its value runs to the closing brace).  Returns
    ``None`` when the shape does not match; validation is again
    downstream.
    """
    pattern = re.compile(
        b'"(' + FULL_STRING_BODY_PATTERN_BYTES + b')"'
        + rb"[ \t\n\r]*:[ \t\n\r]*([\[{])"
    )
    vclose = close - 1
    while vclose > open_ and data[vclose] in b" \t\n\r":
        vclose -= 1
    pos = open_ + 1
    for _ in range(16):  # candidate budget: this is O(1) speculation
        m = pattern.search(data, pos, close)
        if m is None:
            return None
        pos = m.end()
        vopen = m.end() - 1
        if vopen >= vclose:
            return None
        if data[vclose] != (
            _RBRACKET if data[vopen] == _LBRACKET else _RBRACE
        ):
            continue  # value cannot run to the closing brace
        head_end = m.start()
        cursor = head_end
        while cursor > open_ + 1 and data[cursor - 1] in b" \t\n\r":
            cursor -= 1
        if cursor > open_ + 1:
            if data[cursor - 1] != _COMMA:
                # A non-comma byte right before the key means this match
                # sits *inside* an earlier member's value; keep looking.
                continue
            head = (open_ + 1, cursor - 1)
        else:
            head = None
        return head, m.span(1), (vopen, vclose + 1)
    return None
