"""Witness generation: produce instances that satisfy a schema.

Used by tests (cross-validating the Joi→JSON Schema compiler), by the
benchmark workload builders, and on its own as a development aid.  The
strategy is *generate-and-verify*: build a candidate from the schema's
structural keywords, validate it with the real validator, and retry with
fresh randomness until it passes or the attempt budget runs out.  This
keeps the generator simple while guaranteeing that whatever it returns is
genuinely valid.
"""

from __future__ import annotations

import random
import string
from typing import Any

from repro.errors import SchemaError
from repro.jsonschema.validator import JsonSchema, compile_schema


class GenerationError(SchemaError):
    """Raised when no valid instance could be produced."""


_ALPHABET = string.ascii_lowercase + string.digits


class InstanceGenerator:
    """Generates valid instances for (a useful subset of) JSON Schema."""

    def __init__(self, schema_document: Any, *, seed: int = 0, max_attempts: int = 200) -> None:
        self.compiled: JsonSchema = (
            schema_document
            if isinstance(schema_document, JsonSchema)
            else compile_schema(schema_document)
        )
        self.rng = random.Random(seed)
        self.max_attempts = max_attempts

    def generate(self) -> Any:
        """Return one instance valid under the schema."""
        document = self.compiled.document
        for _ in range(self.max_attempts):
            candidate = self._candidate(document, depth=0)
            if self.compiled.is_valid(candidate):
                return candidate
        raise GenerationError(
            "could not generate a valid instance within the attempt budget"
        )

    def generate_many(self, count: int) -> list[Any]:
        return [self.generate() for _ in range(count)]

    # ------------------------------------------------------------------

    def _candidate(self, schema: Any, depth: int) -> Any:
        rng = self.rng
        if schema is True or schema == {}:
            return rng.choice([None, True, rng.randint(0, 99), "x"])
        if schema is False:
            raise GenerationError("the 'false' schema has no instances")
        if not isinstance(schema, dict):
            raise GenerationError(f"cannot generate from schema {schema!r}")

        if "$ref" in schema:
            target, _ = self.compiled.registry.resolve(schema["$ref"], self.compiled.document)
            if depth > 16:
                # Recursion bail-out: try a scalar and let verification decide.
                return None
            return self._candidate(target, depth + 1)
        if "const" in schema:
            return schema["const"]
        if "enum" in schema:
            return rng.choice(schema["enum"])
        for combinator in ("anyOf", "oneOf"):
            if combinator in schema:
                branch = rng.choice(schema[combinator])
                return self._candidate(branch, depth + 1)
        if "allOf" in schema:
            merged: dict[str, Any] = {}
            for branch in schema["allOf"]:
                if isinstance(branch, dict):
                    merged.update(branch)
            rest = {k: v for k, v in schema.items() if k != "allOf"}
            merged.update(rest)
            return self._candidate(merged, depth + 1)

        type_name = self._pick_type(schema)
        if type_name == "null":
            return None
        if type_name == "boolean":
            return rng.choice([True, False])
        if type_name == "integer":
            return self._candidate_integer(schema)
        if type_name == "number":
            return self._candidate_number(schema)
        if type_name == "string":
            return self._candidate_string(schema)
        if type_name == "array":
            return self._candidate_array(schema, depth)
        return self._candidate_object(schema, depth)

    def _pick_type(self, schema: dict) -> str:
        t = schema.get("type")
        if isinstance(t, list) and t:
            return self.rng.choice(t)
        if isinstance(t, str):
            return t
        # Infer a plausible type from present keywords.
        if any(k in schema for k in ("properties", "required", "minProperties")):
            return "object"
        if any(k in schema for k in ("items", "minItems", "contains")):
            return "array"
        if any(k in schema for k in ("pattern", "minLength", "maxLength", "format")):
            return "string"
        if any(k in schema for k in ("minimum", "maximum", "multipleOf")):
            return "number"
        return self.rng.choice(["null", "boolean", "integer", "string"])

    def _candidate_integer(self, schema: dict) -> int:
        low = schema.get("minimum", schema.get("exclusiveMinimum", -100))
        high = schema.get("maximum", schema.get("exclusiveMaximum", 100))
        low, high = int(low), int(high)
        if "exclusiveMinimum" in schema:
            low = int(schema["exclusiveMinimum"]) + 1
        if "exclusiveMaximum" in schema:
            high = int(schema["exclusiveMaximum"]) - 1
        if low > high:
            low, high = high, low
        value = self.rng.randint(low, high)
        factor = schema.get("multipleOf")
        if factor and isinstance(factor, int):
            value = (value // factor) * factor
        return value

    def _candidate_number(self, schema: dict) -> float:
        if self.rng.random() < 0.5 and "multipleOf" not in schema:
            return float(self._candidate_integer(schema)) + 0.5
        return float(self._candidate_integer(schema))

    def _candidate_string(self, schema: dict) -> str:
        fmt = schema.get("format")
        if fmt == "date":
            return "2019-03-26"
        if fmt == "date-time":
            return "2019-03-26T09:30:00Z"
        if fmt == "time":
            return "09:30:00Z"
        if fmt == "email":
            return "tutorial@edbt2019.org"
        if fmt == "ipv4":
            return "192.168.0.1"
        if fmt == "ipv6":
            return "::1"
        if fmt == "uuid":
            return "123e4567-e89b-12d3-a456-426614174000"
        if fmt == "uri":
            return "https://example.org/data"
        if fmt == "hostname":
            return "example.org"
        min_length = schema.get("minLength", 1)
        max_length = schema.get("maxLength", max(min_length, 8))
        length = self.rng.randint(min_length, max(min_length, max_length))
        return "".join(self.rng.choice(_ALPHABET) for _ in range(length))

    def _candidate_array(self, schema: dict, depth: int) -> list:
        items = schema.get("items", True)
        min_items = schema.get("minItems", 0)
        max_items = schema.get("maxItems", min(min_items + 3, 6))
        count = self.rng.randint(min_items, max(min_items, max_items))
        if depth > 8:
            count = min(count, 1)
        if isinstance(items, list):
            result = [self._candidate(sub, depth + 1) for sub in items[:count]]
            extra = schema.get("additionalItems", True)
            while len(result) < count and extra is not False:
                result.append(self._candidate(extra, depth + 1))
            return result
        generated = [self._candidate(items, depth + 1) for _ in range(count)]
        if "contains" in schema and count:
            generated[0] = self._candidate(schema["contains"], depth + 1)
        return generated

    def _candidate_object(self, schema: dict, depth: int) -> dict:
        properties: dict[str, Any] = schema.get("properties", {})
        required = schema.get("required", [])
        result: dict[str, Any] = {}
        for name in required:
            sub = properties.get(name, True)
            result[name] = self._candidate(sub, depth + 1)
        for name, sub in properties.items():
            if name in result:
                continue
            if depth <= 8 and self.rng.random() < 0.5:
                result[name] = self._candidate(sub, depth + 1)
        min_properties = schema.get("minProperties", 0)
        filler = 0
        while len(result) < min_properties:
            result[f"extra_{filler}"] = filler
            filler += 1
        return result


def generate_instance(schema_document: Any, *, seed: int = 0) -> Any:
    """One-shot convenience around :class:`InstanceGenerator`."""
    return InstanceGenerator(schema_document, seed=seed).generate()
