"""Error and result types for JSON Schema validation.

Validation never raises on invalid *instances*: it returns a
:class:`ValidationResult` carrying every :class:`ValidationFailure` found,
each locating the offending value (``instance_path``) and the schema rule
that rejected it (``schema_path`` + ``keyword``).  Malformed *schemas*
raise :class:`SchemaCompileError` at compile time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import SchemaError, ValidationError
from repro.jsonvalue.pointer import JsonPointer


class SchemaCompileError(SchemaError):
    """Raised when a schema document is structurally invalid."""


class InstanceValidationError(ValidationError):
    """Raised by ``validate_or_raise`` when an instance is invalid."""

    def __init__(self, result: "ValidationResult") -> None:
        summary = "; ".join(str(f) for f in result.failures[:3])
        more = len(result.failures) - 3
        if more > 0:
            summary += f" (+{more} more)"
        super().__init__(f"instance is invalid: {summary}")
        self.result = result


@dataclass(frozen=True)
class ValidationFailure:
    """One reason an instance failed validation.

    ``instance_path`` points into the instance, ``schema_path`` into the
    schema document, and ``keyword`` names the violated assertion.
    """

    instance_path: JsonPointer
    schema_path: JsonPointer
    keyword: str
    message: str

    def __str__(self) -> str:
        where = str(self.instance_path) or "<root>"
        return f"{where}: {self.message} [{self.keyword} at {self.schema_path or '#'}]"


@dataclass
class ValidationResult:
    """The outcome of validating one instance against one schema."""

    failures: list[ValidationFailure] = field(default_factory=list)

    @property
    def valid(self) -> bool:
        return not self.failures

    def __bool__(self) -> bool:
        return self.valid

    def extend(self, failures: Iterable[ValidationFailure]) -> None:
        self.failures.extend(failures)

    def __str__(self) -> str:
        if self.valid:
            return "valid"
        return f"invalid ({len(self.failures)} failures)"
