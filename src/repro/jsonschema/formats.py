"""Checkers for the draft-07 ``format`` vocabulary.

Each checker takes the string instance and returns ``True`` when it
conforms.  Unknown formats are not listed here; the validator lets them
pass, as the spec prescribes.
"""

from __future__ import annotations

import ipaddress
import re
from typing import Callable

from repro.jsonvalue.pointer import JsonPointer, JsonPointerError

_DATE_RE = re.compile(r"^(\d{4})-(\d{2})-(\d{2})$")
_TIME_RE = re.compile(
    r"^(\d{2}):(\d{2}):(\d{2})(\.\d+)?(z|Z|[+-]\d{2}:\d{2})$"
)
_DATETIME_RE = re.compile(
    r"^(\d{4})-(\d{2})-(\d{2})[tT ](\d{2}):(\d{2}):(\d{2})(\.\d+)?(z|Z|[+-]\d{2}:\d{2})$"
)
_EMAIL_RE = re.compile(r"^[A-Za-z0-9.!#$%&'*+/=?^_`{|}~-]+@[A-Za-z0-9](?:[A-Za-z0-9-]{0,61}[A-Za-z0-9])?(?:\.[A-Za-z0-9](?:[A-Za-z0-9-]{0,61}[A-Za-z0-9])?)*$")
_HOSTNAME_LABEL_RE = re.compile(r"^[A-Za-z0-9](?:[A-Za-z0-9-]{0,61}[A-Za-z0-9])?$")
_URI_RE = re.compile(r"^[A-Za-z][A-Za-z0-9+.-]*:[^\s]*$")
_UUID_RE = re.compile(
    r"^[0-9a-fA-F]{8}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{12}$"
)

_DAYS_IN_MONTH = (31, 29, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)


def _valid_date_parts(year: int, month: int, day: int) -> bool:
    if not (1 <= month <= 12 and 1 <= day <= _DAYS_IN_MONTH[month - 1]):
        return False
    if month == 2 and day == 29:
        leap = year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)
        return leap
    return True


def check_date(value: str) -> bool:
    m = _DATE_RE.match(value)
    if m is None:
        return False
    year, month, day = (int(g) for g in m.groups())
    return _valid_date_parts(year, month, day)


def _valid_time_parts(hour: int, minute: int, second: int) -> bool:
    # Second 60 admits leap seconds, as RFC 3339 does.
    return hour <= 23 and minute <= 59 and second <= 60


def check_time(value: str) -> bool:
    m = _TIME_RE.match(value)
    if m is None:
        return False
    hour, minute, second = int(m.group(1)), int(m.group(2)), int(m.group(3))
    return _valid_time_parts(hour, minute, second)


def check_date_time(value: str) -> bool:
    m = _DATETIME_RE.match(value)
    if m is None:
        return False
    year, month, day = int(m.group(1)), int(m.group(2)), int(m.group(3))
    hour, minute, second = int(m.group(4)), int(m.group(5)), int(m.group(6))
    return _valid_date_parts(year, month, day) and _valid_time_parts(hour, minute, second)


def check_email(value: str) -> bool:
    return _EMAIL_RE.match(value) is not None


def check_hostname(value: str) -> bool:
    if not value or len(value) > 253:
        return False
    labels = value.rstrip(".").split(".")
    return all(_HOSTNAME_LABEL_RE.match(label) for label in labels)


def check_ipv4(value: str) -> bool:
    parts = value.split(".")
    if len(parts) != 4:
        return False
    for part in parts:
        if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
            return False
        if int(part) > 255:
            return False
    return True


def check_ipv6(value: str) -> bool:
    try:
        ipaddress.IPv6Address(value)
    except (ipaddress.AddressValueError, ValueError):
        return False
    return True


def check_uri(value: str) -> bool:
    return _URI_RE.match(value) is not None


def check_uri_reference(value: str) -> bool:
    # Any URI is a URI reference; otherwise a relative reference must not
    # contain spaces or a stray scheme-less colon in the first segment.
    if check_uri(value):
        return True
    if any(ch.isspace() for ch in value):
        return False
    first_segment = value.split("/", 1)[0]
    return ":" not in first_segment


def check_regex(value: str) -> bool:
    try:
        re.compile(value)
    except re.error:
        return False
    return True


def check_json_pointer(value: str) -> bool:
    try:
        JsonPointer.parse(value)
    except JsonPointerError:
        return False
    return True


def check_uuid(value: str) -> bool:
    return _UUID_RE.match(value) is not None


FORMAT_CHECKS: dict[str, Callable[[str], bool]] = {
    "date": check_date,
    "time": check_time,
    "date-time": check_date_time,
    "email": check_email,
    "hostname": check_hostname,
    "ipv4": check_ipv4,
    "ipv6": check_ipv6,
    "uri": check_uri,
    "uri-reference": check_uri_reference,
    "regex": check_regex,
    "json-pointer": check_json_pointer,
    "uuid": check_uuid,
}
