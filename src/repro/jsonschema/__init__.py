"""JSON Schema (Draft-07 core) — the tutorial's reference schema language.

Compile with :func:`compile_schema`, validate with
:meth:`JsonSchema.validate` (collects all failures) or
:meth:`JsonSchema.is_valid`.  Cross-document references go through
:class:`SchemaRegistry`; witness instances come from
:mod:`repro.jsonschema.generate`.
"""

from repro.jsonschema.errors import (
    InstanceValidationError,
    SchemaCompileError,
    ValidationFailure,
    ValidationResult,
)
from repro.jsonschema.formats import FORMAT_CHECKS
from repro.jsonschema.generate import GenerationError, InstanceGenerator, generate_instance
from repro.jsonschema.refs import SchemaRegistry
from repro.jsonschema.validator import (
    JsonSchema,
    compile_schema,
    is_valid,
    json_schema_equal,
    validate,
)

__all__ = [
    "InstanceValidationError",
    "SchemaCompileError",
    "ValidationFailure",
    "ValidationResult",
    "FORMAT_CHECKS",
    "GenerationError",
    "InstanceGenerator",
    "generate_instance",
    "SchemaRegistry",
    "JsonSchema",
    "compile_schema",
    "is_valid",
    "json_schema_equal",
    "validate",
]
