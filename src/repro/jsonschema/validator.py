"""JSON Schema validator (Draft-07 core), after Pezoa et al. (WWW '16).

The tutorial presents JSON Schema as the reference schema language for
JSON, with "traditional type constructors, like union and concatenation,
as well as very powerful constructors like negation types".  This module
implements the draft-07 validation vocabulary over the library's own JSON
substrate:

- general: ``type`` ``enum`` ``const`` ``format``
- numeric: ``multipleOf`` ``maximum`` ``exclusiveMaximum`` ``minimum``
  ``exclusiveMinimum``
- strings: ``maxLength`` ``minLength`` ``pattern``
- arrays: ``items`` ``additionalItems`` ``maxItems`` ``minItems``
  ``uniqueItems`` ``contains``
- objects: ``maxProperties`` ``minProperties`` ``required`` ``properties``
  ``patternProperties`` ``additionalProperties`` ``dependencies``
  ``propertyNames``
- combinators: ``allOf`` ``anyOf`` ``oneOf`` ``not`` ``if``/``then``/``else``
- references: ``$ref`` with JSON-Pointer fragments via
  :class:`~repro.jsonschema.refs.SchemaRegistry`
- boolean schemas ``true``/``false``

Instance equality for ``enum``/``const`` follows the spec: numbers compare
mathematically (``1 == 1.0``) but booleans are never equal to numbers.
"""

from __future__ import annotations

import math
import re
from typing import Any, Optional

from repro.jsonvalue.model import JsonKind, freeze, is_integer_value, kind_of
from repro.jsonvalue.pointer import JsonPointer
from repro.jsonschema.errors import (
    InstanceValidationError,
    SchemaCompileError,
    ValidationFailure,
    ValidationResult,
)
from repro.jsonschema.formats import FORMAT_CHECKS
from repro.jsonschema.refs import SchemaRegistry, reject_nested_ids

_TYPE_NAMES = frozenset(
    ("null", "boolean", "integer", "number", "string", "array", "object")
)

_ROOT = JsonPointer()


def json_schema_equal(left: Any, right: Any) -> bool:
    """Instance equality per the JSON Schema spec.

    Numbers compare by mathematical value; booleans are a distinct type;
    arrays compare element-wise; objects by key set and member equality.
    """
    lk, rk = kind_of(left), kind_of(right)
    if lk is not rk:
        return False
    if lk is JsonKind.NUMBER:
        return left == right  # 1 == 1.0 mathematically
    if lk is JsonKind.ARRAY:
        return len(left) == len(right) and all(
            json_schema_equal(a, b) for a, b in zip(left, right)
        )
    if lk is JsonKind.OBJECT:
        return left.keys() == right.keys() and all(
            json_schema_equal(v, right[k]) for k, v in left.items()
        )
    return left == right


def _instance_has_type(instance: Any, name: str) -> bool:
    kind = kind_of(instance)
    if name == "null":
        return kind is JsonKind.NULL
    if name == "boolean":
        return kind is JsonKind.BOOLEAN
    if name == "string":
        return kind is JsonKind.STRING
    if name == "array":
        return kind is JsonKind.ARRAY
    if name == "object":
        return kind is JsonKind.OBJECT
    if name == "number":
        return kind is JsonKind.NUMBER
    if name == "integer":
        # Draft 6+: any number with zero fractional part is an integer.
        if kind is not JsonKind.NUMBER:
            return False
        return is_integer_value(instance) or (
            isinstance(instance, float) and instance.is_integer()
        )
    raise SchemaCompileError(f"unknown type name {name!r}")


class JsonSchema:
    """A compiled, validatable JSON Schema.

    Parameters
    ----------
    document:
        The raw schema (a dict, or a boolean schema).
    registry:
        Optional :class:`SchemaRegistry` for cross-document ``$ref``.
    assert_formats:
        When true (default) the ``format`` keyword is an assertion for the
        formats this library knows; unknown formats always pass.
    max_ref_depth:
        Bound on chained/recursive ``$ref`` expansion during a single
        validation walk.
    """

    def __init__(
        self,
        document: Any,
        registry: Optional[SchemaRegistry] = None,
        *,
        assert_formats: bool = True,
        max_ref_depth: int = 64,
    ) -> None:
        self.document = document
        self.registry = registry if registry is not None else SchemaRegistry()
        self.assert_formats = assert_formats
        self.max_ref_depth = max_ref_depth
        self._pattern_cache: dict[str, re.Pattern[str]] = {}
        reject_nested_ids(document)
        self.registry.register_root(document)
        self._check_schema(document, _ROOT)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def validate(self, instance: Any) -> ValidationResult:
        """Validate ``instance``; returns a result carrying all failures."""
        result = ValidationResult()
        self._validate(
            self.document, self.document, instance, _ROOT, _ROOT, result, 0
        )
        return result

    def is_valid(self, instance: Any) -> bool:
        """Fast boolean interface (stops semantics identical to validate)."""
        return self.validate(instance).valid

    def validate_or_raise(self, instance: Any) -> None:
        """Raise :class:`InstanceValidationError` if ``instance`` is invalid."""
        result = self.validate(instance)
        if not result.valid:
            raise InstanceValidationError(result)

    # ------------------------------------------------------------------
    # compile-time structure checking
    # ------------------------------------------------------------------

    def _check_schema(self, schema: Any, path: JsonPointer) -> None:
        if isinstance(schema, bool):
            return
        if not isinstance(schema, dict):
            raise SchemaCompileError(
                f"schema at {path or '#'} must be an object or boolean, "
                f"got {type(schema).__name__}"
            )
        self._check_keywords(schema, path)
        for key, sub in schema.items():
            if key in ("properties", "patternProperties"):
                if not isinstance(sub, dict):
                    raise SchemaCompileError(f"{key} at {path} must be an object")
                for name, subschema in sub.items():
                    if key == "patternProperties":
                        self._compile_pattern(name, path.child(key))
                    self._check_schema(subschema, path.child(key).child(name))
            elif key in ("items",) and isinstance(sub, list):
                for i, subschema in enumerate(sub):
                    self._check_schema(subschema, path.child(key).child(i))
            elif key in (
                "items",
                "additionalItems",
                "additionalProperties",
                "contains",
                "propertyNames",
                "not",
                "if",
                "then",
                "else",
            ):
                self._check_schema(sub, path.child(key))
            elif key in ("allOf", "anyOf", "oneOf"):
                if not isinstance(sub, list) or not sub:
                    raise SchemaCompileError(
                        f"{key} at {path} must be a non-empty array of schemas"
                    )
                for i, subschema in enumerate(sub):
                    self._check_schema(subschema, path.child(key).child(i))
            elif key == "definitions":
                if not isinstance(sub, dict):
                    raise SchemaCompileError(f"definitions at {path} must be an object")
                for name, subschema in sub.items():
                    self._check_schema(subschema, path.child(key).child(name))
            elif key == "dependencies":
                if not isinstance(sub, dict):
                    raise SchemaCompileError(f"dependencies at {path} must be an object")
                for name, dep in sub.items():
                    if isinstance(dep, list):
                        if not all(isinstance(d, str) for d in dep):
                            raise SchemaCompileError(
                                f"property dependency {name!r} at {path} must list strings"
                            )
                    else:
                        self._check_schema(dep, path.child(key).child(name))

    def _check_keywords(self, schema: dict, path: JsonPointer) -> None:
        if "type" in schema:
            t = schema["type"]
            names = t if isinstance(t, list) else [t]
            for name in names:
                if not isinstance(name, str) or name not in _TYPE_NAMES:
                    raise SchemaCompileError(f"invalid type name {name!r} at {path}")
        if "required" in schema:
            req = schema["required"]
            if not isinstance(req, list) or not all(isinstance(r, str) for r in req):
                raise SchemaCompileError(f"required at {path} must be a string array")
        if "enum" in schema:
            if not isinstance(schema["enum"], list) or not schema["enum"]:
                raise SchemaCompileError(f"enum at {path} must be a non-empty array")
        if "pattern" in schema:
            self._compile_pattern(schema["pattern"], path)
        for key in ("multipleOf", "maximum", "exclusiveMaximum", "minimum", "exclusiveMinimum"):
            if key in schema:
                v = schema[key]
                if isinstance(v, bool) or not isinstance(v, (int, float)):
                    raise SchemaCompileError(f"{key} at {path} must be a number")
                if key == "multipleOf" and v <= 0:
                    raise SchemaCompileError(f"multipleOf at {path} must be positive")
        for key in (
            "maxLength",
            "minLength",
            "maxItems",
            "minItems",
            "maxProperties",
            "minProperties",
        ):
            if key in schema:
                v = schema[key]
                if isinstance(v, bool) or not isinstance(v, int) or v < 0:
                    raise SchemaCompileError(
                        f"{key} at {path} must be a non-negative integer"
                    )
        if "$ref" in schema and not isinstance(schema["$ref"], str):
            raise SchemaCompileError(f"$ref at {path} must be a string")

    def _compile_pattern(self, pattern: Any, path: JsonPointer) -> re.Pattern[str]:
        if not isinstance(pattern, str):
            raise SchemaCompileError(f"pattern at {path} must be a string")
        cached = self._pattern_cache.get(pattern)
        if cached is None:
            try:
                cached = re.compile(pattern)
            except re.error as exc:
                raise SchemaCompileError(
                    f"invalid regular expression {pattern!r} at {path}: {exc}"
                ) from exc
            self._pattern_cache[pattern] = cached
        return cached

    # ------------------------------------------------------------------
    # validation walk
    # ------------------------------------------------------------------

    def _validate(
        self,
        schema: Any,
        document: Any,
        instance: Any,
        inst_path: JsonPointer,
        schema_path: JsonPointer,
        result: ValidationResult,
        ref_depth: int,
    ) -> None:
        if schema is True:
            return
        if schema is False:
            result.failures.append(
                ValidationFailure(
                    inst_path, schema_path, "false", "schema 'false' rejects everything"
                )
            )
            return
        if not isinstance(schema, dict):  # pragma: no cover - compile check
            raise SchemaCompileError(f"invalid schema node at {schema_path}")

        if "$ref" in schema:
            # Draft-07: $ref replaces all sibling keywords.
            if ref_depth >= self.max_ref_depth:
                result.failures.append(
                    ValidationFailure(
                        inst_path,
                        schema_path,
                        "$ref",
                        f"$ref expansion exceeded depth {self.max_ref_depth}",
                    )
                )
                return
            target, target_doc = self.registry.resolve(schema["$ref"], document)
            self._validate(
                target,
                target_doc,
                instance,
                inst_path,
                schema_path.child("$ref"),
                result,
                ref_depth + 1,
            )
            return

        fail = result.failures.append

        def failure(keyword: str, message: str) -> None:
            fail(ValidationFailure(inst_path, schema_path.child(keyword), keyword, message))

        kind = kind_of(instance)

        # --- general assertions ---------------------------------------
        if "type" in schema:
            t = schema["type"]
            names = t if isinstance(t, list) else [t]
            if not any(_instance_has_type(instance, n) for n in names):
                failure("type", f"expected type {'/'.join(names)}, got {kind}")
        if "enum" in schema:
            if not any(json_schema_equal(instance, v) for v in schema["enum"]):
                failure("enum", "value is not one of the enumerated values")
        if "const" in schema:
            if not json_schema_equal(instance, schema["const"]):
                failure("const", "value does not equal the const value")
        if self.assert_formats and "format" in schema and kind is JsonKind.STRING:
            check = FORMAT_CHECKS.get(schema["format"])
            if check is not None and not check(instance):
                failure("format", f"not a valid {schema['format']!r} string")

        # --- kind-specific assertions ----------------------------------
        if kind is JsonKind.NUMBER and not isinstance(instance, bool):
            self._validate_number(schema, instance, failure)
        elif kind is JsonKind.STRING:
            self._validate_string(schema, instance, failure)
        elif kind is JsonKind.ARRAY:
            self._validate_array(
                schema, document, instance, inst_path, schema_path, result, ref_depth, failure
            )
        elif kind is JsonKind.OBJECT:
            self._validate_object(
                schema, document, instance, inst_path, schema_path, result, ref_depth, failure
            )

        # --- combinators ------------------------------------------------
        if "allOf" in schema:
            for i, sub in enumerate(schema["allOf"]):
                self._validate(
                    sub,
                    document,
                    instance,
                    inst_path,
                    schema_path.child("allOf").child(i),
                    result,
                    ref_depth,
                )
        if "anyOf" in schema:
            if not any(
                self._quietly_valid(sub, document, instance, ref_depth)
                for sub in schema["anyOf"]
            ):
                failure("anyOf", "value matches none of the anyOf branches")
        if "oneOf" in schema:
            matching = sum(
                1
                for sub in schema["oneOf"]
                if self._quietly_valid(sub, document, instance, ref_depth)
            )
            if matching != 1:
                failure("oneOf", f"value matches {matching} oneOf branches, expected exactly 1")
        if "not" in schema:
            if self._quietly_valid(schema["not"], document, instance, ref_depth):
                failure("not", "value matches the negated schema")
        if "if" in schema:
            condition = self._quietly_valid(schema["if"], document, instance, ref_depth)
            branch_key = "then" if condition else "else"
            branch = schema.get(branch_key)
            if branch is not None:
                self._validate(
                    branch,
                    document,
                    instance,
                    inst_path,
                    schema_path.child(branch_key),
                    result,
                    ref_depth,
                )

    def _quietly_valid(self, schema: Any, document: Any, instance: Any, ref_depth: int) -> bool:
        probe = ValidationResult()
        self._validate(schema, document, instance, _ROOT, _ROOT, probe, ref_depth)
        return probe.valid

    # --- numbers -------------------------------------------------------

    @staticmethod
    def _validate_number(schema: dict, instance: Any, failure) -> None:
        if "multipleOf" in schema:
            factor = schema["multipleOf"]
            if isinstance(instance, int) and isinstance(factor, int):
                ok = instance % factor == 0
            else:
                quotient = instance / factor
                ok = math.isfinite(quotient) and (
                    quotient == int(quotient)
                    or math.isclose(quotient, round(quotient), rel_tol=1e-12)
                    and math.isclose(
                        round(quotient) * factor, instance, rel_tol=1e-12
                    )
                )
            if not ok:
                failure("multipleOf", f"{instance} is not a multiple of {factor}")
        if "maximum" in schema and instance > schema["maximum"]:
            failure("maximum", f"{instance} exceeds maximum {schema['maximum']}")
        if "exclusiveMaximum" in schema and instance >= schema["exclusiveMaximum"]:
            failure(
                "exclusiveMaximum",
                f"{instance} is not below exclusiveMaximum {schema['exclusiveMaximum']}",
            )
        if "minimum" in schema and instance < schema["minimum"]:
            failure("minimum", f"{instance} is below minimum {schema['minimum']}")
        if "exclusiveMinimum" in schema and instance <= schema["exclusiveMinimum"]:
            failure(
                "exclusiveMinimum",
                f"{instance} is not above exclusiveMinimum {schema['exclusiveMinimum']}",
            )

    # --- strings -------------------------------------------------------

    def _validate_string(self, schema: dict, instance: str, failure) -> None:
        if "maxLength" in schema and len(instance) > schema["maxLength"]:
            failure("maxLength", f"string longer than {schema['maxLength']}")
        if "minLength" in schema and len(instance) < schema["minLength"]:
            failure("minLength", f"string shorter than {schema['minLength']}")
        if "pattern" in schema:
            pattern = self._compile_pattern(schema["pattern"], _ROOT)
            if pattern.search(instance) is None:
                failure("pattern", f"string does not match pattern {schema['pattern']!r}")

    # --- arrays --------------------------------------------------------

    def _validate_array(
        self,
        schema: dict,
        document: Any,
        instance: list,
        inst_path: JsonPointer,
        schema_path: JsonPointer,
        result: ValidationResult,
        ref_depth: int,
        failure,
    ) -> None:
        if "maxItems" in schema and len(instance) > schema["maxItems"]:
            failure("maxItems", f"array has more than {schema['maxItems']} items")
        if "minItems" in schema and len(instance) < schema["minItems"]:
            failure("minItems", f"array has fewer than {schema['minItems']} items")
        if schema.get("uniqueItems"):
            seen: set = set()
            for i, item in enumerate(instance):
                key = freeze(item)
                # freeze distinguishes 1 from 1.0, but spec equality does
                # not; normalise integral floats to int for the key.
                key = _numeric_normalize(key)
                if key in seen:
                    failure("uniqueItems", f"items are not unique (duplicate at {i})")
                    break
                seen.add(key)
        items = schema.get("items")
        if items is not None:
            if isinstance(items, list):
                for i, item in enumerate(instance):
                    if i < len(items):
                        self._validate(
                            items[i],
                            document,
                            item,
                            inst_path.child(i),
                            schema_path.child("items").child(i),
                            result,
                            ref_depth,
                        )
                    else:
                        additional = schema.get("additionalItems")
                        if additional is None:
                            break
                        self._validate(
                            additional,
                            document,
                            item,
                            inst_path.child(i),
                            schema_path.child("additionalItems"),
                            result,
                            ref_depth,
                        )
            else:
                for i, item in enumerate(instance):
                    self._validate(
                        items,
                        document,
                        item,
                        inst_path.child(i),
                        schema_path.child("items"),
                        result,
                        ref_depth,
                    )
        if "contains" in schema:
            if not any(
                self._quietly_valid(schema["contains"], document, item, ref_depth)
                for item in instance
            ):
                failure("contains", "no array item matches the contains schema")

    # --- objects -------------------------------------------------------

    def _validate_object(
        self,
        schema: dict,
        document: Any,
        instance: dict,
        inst_path: JsonPointer,
        schema_path: JsonPointer,
        result: ValidationResult,
        ref_depth: int,
        failure,
    ) -> None:
        if "maxProperties" in schema and len(instance) > schema["maxProperties"]:
            failure("maxProperties", f"object has more than {schema['maxProperties']} members")
        if "minProperties" in schema and len(instance) < schema["minProperties"]:
            failure("minProperties", f"object has fewer than {schema['minProperties']} members")
        if "required" in schema:
            for name in schema["required"]:
                if name not in instance:
                    failure("required", f"required member {name!r} is missing")

        properties = schema.get("properties", {})
        pattern_properties = schema.get("patternProperties", {})
        additional = schema.get("additionalProperties")

        for name, value in instance.items():
            matched = False
            if name in properties:
                matched = True
                self._validate(
                    properties[name],
                    document,
                    value,
                    inst_path.child(name),
                    schema_path.child("properties").child(name),
                    result,
                    ref_depth,
                )
            for pattern_text, sub in pattern_properties.items():
                pattern = self._compile_pattern(pattern_text, _ROOT)
                if pattern.search(name) is not None:
                    matched = True
                    self._validate(
                        sub,
                        document,
                        value,
                        inst_path.child(name),
                        schema_path.child("patternProperties").child(pattern_text),
                        result,
                        ref_depth,
                    )
            if not matched and additional is not None:
                self._validate(
                    additional,
                    document,
                    value,
                    inst_path.child(name),
                    schema_path.child("additionalProperties"),
                    result,
                    ref_depth,
                )

        if "propertyNames" in schema:
            for name in instance:
                self._validate(
                    schema["propertyNames"],
                    document,
                    name,
                    inst_path.child(name),
                    schema_path.child("propertyNames"),
                    result,
                    ref_depth,
                )

        if "dependencies" in schema:
            for name, dep in schema["dependencies"].items():
                if name not in instance:
                    continue
                if isinstance(dep, list):
                    for required_name in dep:
                        if required_name not in instance:
                            failure(
                                "dependencies",
                                f"member {name!r} requires member {required_name!r}",
                            )
                else:
                    self._validate(
                        dep,
                        document,
                        instance,
                        inst_path,
                        schema_path.child("dependencies").child(name),
                        result,
                        ref_depth,
                    )


def _numeric_normalize(frozen_key: Any) -> Any:
    """Collapse the int/float distinction inside a frozen value key."""
    if isinstance(frozen_key, tuple):
        if frozen_key and frozen_key[0] == "$num":
            value = frozen_key[2]
            if isinstance(value, float) and value.is_integer():
                return ("$num", "int", int(value))
            return frozen_key
        return tuple(_numeric_normalize(p) for p in frozen_key)
    return frozen_key


def compile_schema(
    document: Any,
    registry: Optional[SchemaRegistry] = None,
    *,
    assert_formats: bool = True,
) -> JsonSchema:
    """Compile a raw schema document into a validatable :class:`JsonSchema`."""
    return JsonSchema(document, registry, assert_formats=assert_formats)


def validate(schema_document: Any, instance: Any) -> ValidationResult:
    """One-shot validation convenience."""
    return compile_schema(schema_document).validate(instance)


def is_valid(schema_document: Any, instance: Any) -> bool:
    """One-shot boolean validation convenience."""
    return compile_schema(schema_document).is_valid(instance)
