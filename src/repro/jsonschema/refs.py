"""``$ref`` resolution for JSON Schema documents.

A :class:`SchemaRegistry` maps base URIs to raw schema documents and
resolves references of the forms

- ``#`` — the whole current document,
- ``#/definitions/thing`` — a JSON Pointer into the current document,
- ``https://example.com/s.json`` — a registered document,
- ``https://example.com/s.json#/definitions/thing`` — pointer into one.

Root-level ``$id`` declarations register the document under that URI.
Nested ``$id`` re-basing (draft-07 scope changes) is deliberately out of
scope — the tutorial's schemas never use it — and raises a clear error
rather than resolving incorrectly.
"""

from __future__ import annotations

from typing import Any

from repro.jsonvalue.pointer import JsonPointer, JsonPointerError
from repro.jsonschema.errors import SchemaCompileError


class SchemaRegistry:
    """Holds raw schema documents addressable by URI."""

    def __init__(self) -> None:
        self._documents: dict[str, Any] = {}

    def add(self, uri: str, document: Any) -> None:
        """Register ``document`` under ``uri`` (and under its ``$id`` if present)."""
        self._documents[uri.rstrip("#")] = document
        if isinstance(document, dict):
            doc_id = document.get("$id")
            if isinstance(doc_id, str):
                self._documents[doc_id.rstrip("#")] = document

    def register_root(self, document: Any) -> None:
        """Register a document under its own ``$id``, if it declares one."""
        if isinstance(document, dict):
            doc_id = document.get("$id")
            if isinstance(doc_id, str):
                self._documents[doc_id.rstrip("#")] = document

    def lookup(self, uri: str) -> Any:
        base = uri.rstrip("#")
        if base not in self._documents:
            raise SchemaCompileError(f"unresolvable schema URI {uri!r}")
        return self._documents[base]

    def resolve(self, ref: str, current_document: Any) -> tuple[Any, Any]:
        """Resolve ``ref`` relative to ``current_document``.

        Returns ``(target_schema, its_document)`` — the document is needed
        so that refs inside the target resolve against the right root.
        """
        if ref == "#":
            return current_document, current_document
        if ref.startswith("#/"):
            return self._pointer_into(current_document, ref[1:], ref), current_document
        if ref.startswith("#"):
            raise SchemaCompileError(
                f"plain-name fragment {ref!r} is not supported (use JSON Pointers)"
            )
        base, _, fragment = ref.partition("#")
        document = self.lookup(base)
        if not fragment:
            return document, document
        if not fragment.startswith("/"):
            raise SchemaCompileError(
                f"plain-name fragment in {ref!r} is not supported (use JSON Pointers)"
            )
        return self._pointer_into(document, fragment, ref), document

    @staticmethod
    def _pointer_into(document: Any, pointer_text: str, ref: str) -> Any:
        try:
            pointer = JsonPointer.parse(pointer_text)
            return pointer.resolve(document)
        except JsonPointerError as exc:
            raise SchemaCompileError(f"cannot resolve $ref {ref!r}: {exc}") from exc


# Keywords whose value is a single subschema.
_SCHEMA_VALUE_KEYWORDS = (
    "additionalItems",
    "additionalProperties",
    "contains",
    "propertyNames",
    "not",
    "if",
    "then",
    "else",
)
# Keywords whose value is a list of subschemas.
_SCHEMA_LIST_KEYWORDS = ("allOf", "anyOf", "oneOf")
# Keywords whose value maps *names* (not keywords!) to subschemas.
_SCHEMA_MAP_KEYWORDS = ("properties", "patternProperties", "definitions")


def reject_nested_ids(schema: Any, *, _at_root: bool = True) -> None:
    """Raise if ``schema`` uses nested ``$id`` re-basing (unsupported).

    Walks the *schema structure* (not raw dicts), so a property that merely
    happens to be named ``$id`` — common in documents about schemas — is
    data, not a base-URI declaration, and is left alone.
    """
    if isinstance(schema, bool) or not isinstance(schema, dict):
        return
    if not _at_root and "$id" in schema:
        raise SchemaCompileError(
            "nested $id re-basing is not supported by this validator"
        )
    for key, value in schema.items():
        if key in _SCHEMA_MAP_KEYWORDS and isinstance(value, dict):
            for sub in value.values():
                reject_nested_ids(sub, _at_root=False)
        elif key in _SCHEMA_LIST_KEYWORDS and isinstance(value, list):
            for sub in value:
                reject_nested_ids(sub, _at_root=False)
        elif key == "items":
            if isinstance(value, list):
                for sub in value:
                    reject_nested_ids(sub, _at_root=False)
            else:
                reject_nested_ids(value, _at_root=False)
        elif key in _SCHEMA_VALUE_KEYWORDS:
            reject_nested_ids(value, _at_root=False)
        elif key == "dependencies" and isinstance(value, dict):
            for dep in value.values():
                if isinstance(dep, dict):
                    reject_nested_ids(dep, _at_root=False)
