"""E18 — bytes-native scan pipeline: mmap ranges → interned types.

Artifact reconstructed: the serial corpus fold after PR 5 replaced the
per-line ``mmap → slice → .decode("utf-8") → str scan`` path with the
bytes-native pipeline — ``accumulate_ranges`` runs the batched
line-shape skeleton cache plus the ``encode_bytes`` structural scan
straight over the mapped file's byte ranges, so repeated line shapes
resolve with one dict probe per line and *no* line is decoded to
``str`` on the happy path — and the parallel shared-memory feed whose
workers now fold the shared buffer's bytes directly (zero decoded
intermediaries between the one corpus memcpy and the interned
partials).

Three sections, all recorded in ``BENCH_bytes.json``:

- **fold**: docs/sec of the serial mmap-corpus fold — the PR 4
  decode+scan path (iterate the corpus, decode each line, str scan)
  vs. the bytes fold — on the generator corpora, a non-ASCII corpus,
  and the numeric corpus (whose digit-bearing keys disable the line
  cache: the adaptive fallback's floor);
- **parallel**: the shared-memory and file-range byte feeds at fixed
  worker counts, with the per-worker transport recorded;
- **calibration**: the scheduler plan consuming the persisted
  per-machine profile (startup/shipping constants loaded, not
  re-sampled or defaulted).

Timing ratios are asserted only under ``REPRO_BENCH_ASSERT=1`` (wall
clock on shared CI runners is flaky); the identity gates — every path
lands on the interned-identical type — always run.
"""

from __future__ import annotations

import json
import os
import random
import time

from repro.datasets import open_corpus, tweets, github_events, nyt_articles, write_ndjson
from repro.inference import calibration as calibration_module
from repro.inference import distributed as distributed_module
from repro.inference.distributed import infer_distributed_text, plan_schedule
from repro.inference.engine import TypeAccumulator, accumulate_ranges
from repro.jsonvalue.serializer import dumps
from repro.types.build import EventTypeEncoder
from repro.types.intern import InternTable, global_table

from helpers import RESULTS_DIR, emit, table

SIZES = [10_000, 50_000]
if os.environ.get("REPRO_BENCH_FULL"):
    SIZES.append(100_000)

ASSERT_TIMING = bool(os.environ.get("REPRO_BENCH_ASSERT"))


def _numeric_lines(n: int) -> list[str]:
    rng = random.Random(17)
    return [
        dumps(
            {
                "series": [rng.randint(0, 10**12) for _ in range(40)],
                "metrics": {
                    "mean": rng.random() * 100,
                    "p99": rng.random() * 1000,
                    "count": rng.randint(0, 10**6),
                },
            }
        )
        for _ in range(n)
    ]


def _nonascii_lines(n: int) -> list[str]:
    rng = random.Random(17)
    names = ["Алёна", "Борис", "Вера", "花子", "太郎", "José", "Zoë"]
    cities = ["東京", "Köln", "Санкт-Петербург", "São Paulo"]
    tags = ["путешествия", "музыка", "料理", "fútbol", "😀", "𝄞"]
    return [
        dumps(
            {
                "имя": rng.choice(names),
                "город": {"название": rng.choice(cities), "indice": rng.random()},
                "метки": [rng.choice(tags) for _ in range(rng.randint(0, 3))],
                "счёт": rng.randint(0, 10**9),
            }
        )
        for _ in range(n)
    ]


def _pr4_decode_fold(corpus) -> TypeAccumulator:
    """The PR 4 serial path: per-line decode + str scan + fold."""
    accumulator = TypeAccumulator(table=InternTable())
    add_text = accumulator.add_text
    for line in corpus:  # MmapCorpus.__iter__ decodes each line
        if not line or line.isspace():
            continue
        add_text(line)
    return accumulator


def _bytes_fold(corpus) -> TypeAccumulator:
    """The PR 5 serial path: undecoded byte ranges, skeleton cache."""
    return accumulate_ranges(corpus.buffer(), corpus.spans, table=InternTable())


def _timed(fn, repeat=2):
    best, best_result = None, None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best, best_result = elapsed, result
    return best, best_result


def _bench_fold(rows, records, tmp_dir):
    corpora = [
        ("tweets", lambda n: tweets(n, seed=17), True),
        ("github", lambda n: github_events(n, seed=17), True),
        ("nyt", lambda n: nyt_articles(n, seed=17), True),
    ]
    line_corpora = [
        ("nonascii", _nonascii_lines),
        ("numeric-keys", _numeric_lines),
    ]
    verify = global_table()
    for name, make, is_docs in corpora + [
        (n, mk, False) for n, mk in line_corpora
    ]:
        for n in SIZES:
            path = os.path.join(tmp_dir, f"{name}-{n}.ndjson")
            if is_docs:
                write_ndjson(path, make(n))
            else:
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write("\n".join(make(n)) + "\n")
            with open_corpus(path) as corpus:
                seconds_decode, decode_acc = _timed(
                    lambda: _pr4_decode_fold(corpus)
                )
                seconds_bytes, bytes_acc = _timed(lambda: _bytes_fold(corpus))
            os.unlink(path)
            # Identity gate: both folds land on the canonical node.
            assert verify.canonical(decode_acc.result()) is verify.canonical(
                bytes_acc.result()
            ), name
            assert decode_acc.document_count == bytes_acc.document_count == n
            speedup = seconds_decode / seconds_bytes
            record = {
                "corpus": name,
                "documents": n,
                "docs_per_sec_decode_scan": round(n / seconds_decode),
                "docs_per_sec_bytes_fold": round(n / seconds_bytes),
                "speedup_vs_decode_scan": round(speedup, 2),
            }
            records.append(record)
            rows.append(
                [
                    name,
                    n,
                    record["docs_per_sec_decode_scan"],
                    record["docs_per_sec_bytes_fold"],
                    f"{speedup:5.2f}x",
                ]
            )
    if ASSERT_TIMING:
        at_top = [r for r in records if r["documents"] == max(SIZES)]
        assert max(r["speedup_vs_decode_scan"] for r in at_top) >= 1.15


def _bench_parallel(rows, records, tmp_dir):
    n = max(SIZES)
    path = os.path.join(tmp_dir, "parallel.ndjson")
    write_ndjson(path, tweets(n, seed=17))
    verify = global_table()
    with open_corpus(path) as corpus:
        reference = verify.canonical(_bytes_fold(corpus).result())
        for feed, shm in (("shm-bytes", True), ("file-range-bytes", False)):
            with open_corpus(path) as corpus_run:
                seconds, run = _timed(
                    lambda c=corpus_run, s=shm: infer_distributed_text(
                        c, partitions=2, processes=2, shared_memory=s
                    )
                )
            assert verify.canonical(run.result) is reference
            assert run.document_count == n
            record = {
                "feed": feed,
                "jobs": 2,
                "documents": n,
                "docs_per_sec": round(n / seconds),
                # Workers fold raw byte ranges; nothing is decoded
                # between the transport and the interned partials.
                "decoded_intermediaries": 0,
            }
            records.append(record)
            rows.append([feed, 2, record["docs_per_sec"], 0])
    os.unlink(path)


def _bench_calibration(rows, records, tmp_dir):
    profile = os.path.join(tmp_dir, "sched.json")
    previous = os.environ.get("REPRO_SCHED_PROFILE")
    os.environ["REPRO_SCHED_PROFILE"] = profile
    calibration_module._LOADED.clear()
    original_auto_jobs = distributed_module.auto_jobs
    try:
        # First load measures and persists the machine profile ...
        measured = calibration_module.load_calibration()
        assert os.path.exists(profile)
        # ... subsequent processes (simulated by a cache drop) load it.
        calibration_module._LOADED.clear()
        loaded = calibration_module.load_calibration()
        assert loaded.source == "profile"
        # A plan computed where the cost model actually runs must carry
        # the profile's provenance (8 modeled CPUs so the 1-CPU
        # short-circuit doesn't skip the model).
        distributed_module.auto_jobs = lambda: 8
        lines = [dumps({"a": i, "b": [i, i + 1]}) for i in range(4000)]
        plan = plan_schedule(lines, jobs=4)
        assert plan.calibration_source == "profile"
        record = {
            "measured_worker_startup_seconds": measured.worker_startup_seconds,
            "measured_ship_bytes_per_second": measured.ship_bytes_per_second,
            "plan_calibration_source": plan.calibration_source,
            "plan_mode": plan.mode,
            "plan_reason": plan.reason,
        }
        records.append(record)
        rows.append(
            [
                measured.worker_startup_seconds,
                f"{measured.ship_bytes_per_second:.3g}",
                plan.calibration_source,
                plan.mode,
            ]
        )
    finally:
        distributed_module.auto_jobs = original_auto_jobs
        if previous is None:
            os.environ.pop("REPRO_SCHED_PROFILE", None)
        else:
            os.environ["REPRO_SCHED_PROFILE"] = previous
        calibration_module._LOADED.clear()


def test_e18_bytes_scan(tmp_path):
    fold_rows: list[list] = []
    fold_records: list[dict] = []
    _bench_fold(fold_rows, fold_records, str(tmp_path))

    parallel_rows: list[list] = []
    parallel_records: list[dict] = []
    _bench_parallel(parallel_rows, parallel_records, str(tmp_path))

    calibration_rows: list[list] = []
    calibration_records: list[dict] = []
    _bench_calibration(calibration_rows, calibration_records, str(tmp_path))

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_bytes.json").write_text(
        json.dumps(
            {
                "experiment": "e18-bytes-scan",
                "fold_rows": fold_records,
                "parallel_rows": parallel_records,
                "calibration_rows": calibration_records,
            },
            indent=2,
        )
        + "\n"
    )
    emit(
        "E18-bytes-scan",
        table(
            ["corpus", "docs", "decode+scan/s", "bytes-fold/s", "speedup"],
            fold_rows,
        )
        + "\n\n"
        + table(
            ["feed", "jobs", "docs/s", "decoded intermediaries"], parallel_rows
        )
        + "\n\n"
        + table(
            ["startup s", "ship B/s", "plan calib", "plan mode"],
            calibration_rows,
        ),
    )
