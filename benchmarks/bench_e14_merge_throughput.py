"""E14 — merge throughput: seed ``merge_all`` vs the incremental accumulator.

Artifact reconstructed: the scalability argument of the VLDB J paper —
merge is a monoid, so the reduce phase can be folded incrementally with
bounded state instead of materializing every per-document type.  This
experiment measures exactly that reduce phase (documents are pre-typed
once, outside the timed region, since both paths share the map phase):

- ``merge_all``: the seed's batch fold over the full list of types;
- ``TypeAccumulator``: the hash-consed streaming fold of the engine.

Emits ``BENCH_merge.json`` (docs/sec for both paths, speedup, peak RSS,
accumulator state size) under ``benchmarks/results/`` so the perf
trajectory is recorded run over run.

Expected shape: the accumulator's docs/sec is a multiple of the seed's
(>= 3x on the 50k KIND merge), and its state (classes / state nodes) is
identical across 10k and 50k documents — O(classes) memory, independent
of collection size.  Set ``REPRO_BENCH_FULL=1`` to extend to 100k docs.
"""

from __future__ import annotations

import json
import os
import resource
import time

from repro.datasets import tweets
from repro.inference.engine import TypeAccumulator
from repro.types import Equivalence, merge_all, type_of
from repro.types.intern import InternTable

from helpers import RESULTS_DIR, emit, table

SIZES = [10_000, 50_000]
if os.environ.get("REPRO_BENCH_FULL"):
    SIZES.append(100_000)


def _peak_rss_kb() -> int:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def test_e14_merge_throughput():
    rows = []
    records = []
    for n in SIZES:
        docs = tweets(n, seed=14)
        types = [type_of(d) for d in docs]

        start = time.perf_counter()
        baseline = merge_all(types, Equivalence.KIND)
        seconds_seed = time.perf_counter() - start

        # Fresh table: the accumulator gets no warm cache from the
        # baseline run or from earlier sizes.
        accumulator = TypeAccumulator(Equivalence.KIND, table=InternTable())
        start = time.perf_counter()
        for t in types:
            accumulator.add_type(t)
        incremental = accumulator.result()
        seconds_acc = time.perf_counter() - start

        assert incremental == baseline  # bit-identical reduce
        speedup = seconds_seed / seconds_acc
        docs_per_sec_seed = n / seconds_seed
        docs_per_sec_acc = n / seconds_acc
        # Timing ratios are asserted only when explicitly requested
        # (REPRO_BENCH_ASSERT=1): wall-clock assertions on shared CI
        # runners are flaky, and the bit-identity assert above is the
        # correctness gate.  The JSON always records the real numbers.
        if os.environ.get("REPRO_BENCH_ASSERT"):
            assert seconds_acc < seconds_seed
        record = {
            "documents": n,
            "equivalence": "kind",
            "docs_per_sec_seed": round(docs_per_sec_seed),
            "docs_per_sec_accumulator": round(docs_per_sec_acc),
            "speedup": round(speedup, 2),
            "accumulator_classes": accumulator.class_count(),
            "accumulator_state_nodes": accumulator.state_nodes(),
            "peak_rss_kb": _peak_rss_kb(),
        }
        records.append(record)
        rows.append(
            [
                n,
                f"{docs_per_sec_seed:10.0f}",
                f"{docs_per_sec_acc:10.0f}",
                f"{speedup:5.1f}x",
                accumulator.class_count(),
                accumulator.state_nodes(),
                record["peak_rss_kb"],
            ]
        )
    by_docs = {r["documents"]: r for r in records}
    # Acceptance: >= 3x on the 50k-document KIND merge, checked under
    # REPRO_BENCH_ASSERT (measured ~12x; see BENCH_merge.json for the
    # recorded trajectory).
    if os.environ.get("REPRO_BENCH_ASSERT"):
        assert by_docs[50_000]["speedup"] >= 3.0
    # O(classes) state: independent of document count.
    assert (
        by_docs[10_000]["accumulator_state_nodes"]
        == by_docs[50_000]["accumulator_state_nodes"]
    )
    assert by_docs[10_000]["accumulator_classes"] == by_docs[50_000]["accumulator_classes"]

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_merge.json").write_text(
        json.dumps({"experiment": "e14-merge-throughput", "rows": records}, indent=2)
        + "\n"
    )
    emit(
        "E14-merge-throughput",
        table(
            ["docs", "seed docs/s", "acc docs/s", "speedup", "classes", "state", "rss KB"],
            rows,
        ),
    )
