"""Shared helpers for the experiment benchmarks.

Every experiment prints the rows/series of the artifact it reconstructs
(DESIGN.md §3) *and* records them under ``benchmarks/results/`` so the
tables survive pytest's output capturing and can be pasted into
EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib
import sys
import time
from typing import Callable

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(experiment: str, text: str) -> None:
    """Print an experiment table and persist it to results/<experiment>.txt."""
    banner = f"\n===== {experiment} =====\n{text}\n"
    print(banner)
    sys.stderr.write(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n")


def wall_ms(fn: Callable[[], object], repeat: int = 3) -> float:
    """Best-of-N wall-clock milliseconds for quick in-table measurements."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1000.0


def table(headers: list[str], rows: list[list[object]]) -> str:
    """Format a fixed-width text table."""
    texts = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in texts)) if texts else len(headers[i])
        for i in range(len(headers))
    ]
    def fmt(cells: list[str]) -> str:
        return " | ".join(c.rjust(w) for c, w in zip(cells, widths))

    lines = [fmt(headers), "-+-".join("-" * w for w in widths)]
    lines.extend(fmt(r) for r in texts)
    return "\n".join(lines)
