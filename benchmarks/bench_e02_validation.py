"""E2 — Validation throughput across schema languages (tutorial Part 2/3).

Artifact reconstructed: the cost-of-validation comparison implicit in the
tutorial's language tour — the same document family validated by JSON
Schema, Joi, JSound, TypeScript ``check``, and Swift ``decode``.

Expected shape: the structural checkers (TS/Swift/JSound) are fastest
(less machinery per node); JSON Schema pays for combinators and pattern
properties; all systems agree on clearly-valid documents.
"""

import pytest

import repro.joi as joi
from repro.datasets import nyt_articles
from repro.jsonschema import compile_schema
from repro.jsound import compile_jsound
from repro.pl import swift as sw
from repro.pl import typescript as ts

from helpers import emit, table, wall_ms

DOCS = nyt_articles(300, seed=11)

JSON_SCHEMA = compile_schema(
    {
        "type": "object",
        "properties": {
            "_id": {"type": "string"},
            "headline": {
                "type": "object",
                "properties": {"main": {"type": "string"}, "kicker": {"type": "string"}},
                "required": ["main"],
            },
            "pub_date": {"type": "string", "format": "date-time"},
            "word_count": {"type": "integer", "minimum": 0},
            "keywords": {
                "type": "array",
                "items": {
                    "type": "object",
                    "properties": {"value": {"type": "string"}, "rank": {"type": "integer"}},
                },
            },
        },
        "required": ["_id", "headline", "pub_date", "word_count"],
    }
)

JOI_SCHEMA = joi.object().unknown().keys(
    {
        "_id": joi.string().required(),
        "headline": joi.object()
        .unknown()
        .keys({"main": joi.string().required(), "kicker": joi.string()}),
        "pub_date": joi.string().required(),
        "word_count": joi.number().integer().min(0).required(),
        "keywords": joi.array().items(joi.object().unknown()),
    }
)

JSOUND_SCHEMA = compile_jsound(
    {
        "_id": "string",
        "headline": {"main": "string", "kicker": "string"},
        "byline": "any",
        "pub_date": "dateTime",
        "section_name": "string",
        "print_page": "string",
        "news_desk": "string",
        "word_count": "integer",
        "keywords": ["any"],
        "multimedia?": ["any"],
        "snippet?": "string",
    }
)

TS_TYPE = ts.TSObject(
    (
        ts.TSProperty("_id", ts.STRING),
        ts.TSProperty(
            "headline",
            ts.TSObject(
                (ts.TSProperty("main", ts.STRING), ts.TSProperty("kicker", ts.STRING))
            ),
        ),
        ts.TSProperty("pub_date", ts.STRING),
        ts.TSProperty("word_count", ts.NUMBER),
        ts.TSProperty("keywords", ts.TSArray(ts.ANY), optional=True),
    )
)

SWIFT_TYPE = sw.SwiftStruct.of(
    "Article",
    {
        "_id": sw.STRING,
        "pub_date": sw.STRING,
        "word_count": sw.INT,
        "section_name": sw.STRING,
        "snippet": sw.SwiftOptional(sw.STRING),
    },
)

VALIDATORS = {
    "JSON Schema": lambda d: JSON_SCHEMA.is_valid(d),
    "Joi": lambda d: JOI_SCHEMA.is_valid(d),
    "JSound": lambda d: JSOUND_SCHEMA.is_valid(d),
    "TypeScript": lambda d: ts.check(d, TS_TYPE),
    "Swift": lambda d: sw.can_decode(SWIFT_TYPE, d),
}


@pytest.mark.parametrize("system", list(VALIDATORS))
def test_e02_validation_throughput(benchmark, system):
    check = VALIDATORS[system]

    def run():
        return sum(1 for d in DOCS if check(d))

    accepted = benchmark(run)
    assert accepted > 0


def test_e02_report(benchmark):
    rows = []
    for system, check in VALIDATORS.items():
        ms = wall_ms(lambda c=check: [c(d) for d in DOCS])
        accepted = sum(1 for d in DOCS if check(d))
        rows.append(
            [
                system,
                f"{accepted}/{len(DOCS)}",
                f"{ms:8.2f}",
                f"{len(DOCS) / ms * 1000:9.0f}",
            ]
        )
    emit(
        "E2-validation-throughput",
        table(["system", "accepted", "ms/300 docs", "docs/sec"], rows),
    )
    benchmark(lambda: VALIDATORS["JSON Schema"](DOCS[0]))
