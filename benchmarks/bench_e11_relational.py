"""E11 — FD-driven relational normalisation (DiScala & Abadi, SIGMOD '16).

Artifact reconstructed: the paper's redundancy-removal results — from
denormalised nested JSON, mine functional dependencies, extract entity
tables, and measure the storage saved.

Expected shape: redundancy reduction grows with the repetition factor
(orders per customer); the FD miner finds exactly the planted
dependencies and nothing spurious at realistic sizes.
"""

import pytest

from repro.datasets.generator import Rng
from repro.inference import flatten, mine_fds, normalize

from helpers import emit, table, wall_ms


def _orders(count: int, customers: int, *, seed: int = 0) -> list[dict]:
    """Denormalised orders embedding their customer's attributes."""
    rng = Rng(seed)
    cust = [
        {
            "cust_id": f"c{i}",
            "cust_name": rng.sentence(2).title(),
            "cust_city": rng.word().title(),
            "cust_segment": rng.random.choice(["gold", "silver", "bronze"]),
        }
        for i in range(customers)
    ]
    return [
        {
            "order_id": i,
            "amount": rng.random.randint(5, 500),
            "item": rng.word(),
            **cust[i % customers],
        }
        for i in range(count)
    ]


def test_e11_normalize_speed(benchmark):
    docs = _orders(300, 20, seed=11)
    report = benchmark(lambda: normalize(docs))
    assert report.decomposition.table_count() >= 2


def test_e11_redundancy_table(benchmark):
    rows = []
    reductions = []
    for customers in (100, 50, 20, 10):
        docs = _orders(400, customers, seed=customers)
        report = normalize(docs)
        fds = mine_fds(flatten(docs).fact)
        ms = wall_ms(lambda d=docs: normalize(d), repeat=1)
        reduction = report.redundancy_reduction
        reductions.append(reduction)
        rows.append(
            [
                f"{400 // customers}x",
                len(fds),
                report.decomposition.table_count(),
                report.flattened.fact.cell_count(),
                report.decomposition.total_cells(),
                f"{reduction:6.1%}",
                f"{ms:7.1f}",
            ]
        )
        planted = {f"cust_id -> {d}" for d in ("cust_name", "cust_city", "cust_segment")}
        assert planted <= set(map(str, fds))
    # More repetition per customer → more redundancy removed.
    assert reductions[-1] > reductions[0]
    emit(
        "E11-relational-normalisation",
        table(
            [
                "orders/customer",
                "FDs",
                "tables",
                "cells before",
                "cells after",
                "reduction",
                "ms",
            ],
            rows,
        ),
    )
    docs = _orders(200, 10, seed=7)
    benchmark(lambda: mine_fds(flatten(docs).fact))
