"""E10 — Inferred-schema conciseness across the §4.1 tool lineup.

Artifact reconstructed: the tutorial's qualitative comparisons made
quantitative on one heterogeneity sweep:

- Studio-3T-like: "not able to merge similar types … huge size,
  comparable to that of the input data";
- mongodb-schema: "quite concise schemas" but per-field only;
- Skinfer: concise but arrays lose item information;
- parametric K: most compact; parametric L: compact yet variant-preserving.

Expected shape: Studio-3T size grows ~linearly with the variant count and
dwarfs everything else on heterogeneous data; parametric K stays smallest;
L sits between K and the field-level summarisers.
"""

import pytest

from repro.datasets import heterogeneous_collection
from repro.inference import (
    StreamingAnalyzer,
    infer_type,
    jsonschema_size,
    skinfer_infer_schema,
    studio3t_analyze,
)
from repro.types import Equivalence

from helpers import emit, table

VARIANT_COUNTS = [1, 2, 4, 8]


def _sizes(docs):
    analyzer = StreamingAnalyzer()
    analyzer.feed_many(docs)
    return {
        "parametric K": infer_type(docs, Equivalence.KIND).size(),
        "parametric L": infer_type(docs, Equivalence.LABEL).size(),
        "skinfer": jsonschema_size(skinfer_infer_schema(docs)),
        "mongodb-schema": analyzer.schema_size(),
        "studio3t": studio3t_analyze(docs).schema_size(),
    }


def test_e10_conciseness_table(benchmark):
    rows = []
    last = None
    for variants in VARIANT_COUNTS:
        docs = heterogeneous_collection(
            300, variants=variants, optional_probability=0.4, seed=variants * 3
        )
        sizes = _sizes(docs)
        rows.append(
            [
                variants,
                sizes["parametric K"],
                sizes["parametric L"],
                sizes["skinfer"],
                sizes["mongodb-schema"],
                sizes["studio3t"],
            ]
        )
        assert sizes["parametric K"] <= sizes["parametric L"]
        last = sizes
    assert last is not None
    # The headline: no-merge catalogues dwarf the merged schemas.
    assert last["studio3t"] > 5 * last["parametric K"]
    emit(
        "E10-schema-conciseness",
        table(
            [
                "variants",
                "parametric K",
                "parametric L",
                "skinfer",
                "mongodb-schema",
                "studio3t (no merge)",
            ],
            rows,
        ),
    )
    docs = heterogeneous_collection(300, variants=4, seed=10)
    benchmark(lambda: _sizes(docs))


def test_e10_studio3t_speed(benchmark):
    docs = heterogeneous_collection(400, variants=6, seed=11)
    analysis = benchmark(lambda: studio3t_analyze(docs))
    assert analysis.document_count == 400
