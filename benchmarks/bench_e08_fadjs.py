"""E8 — Fad.js speculative decoding: speedup vs shape stability.

Artifact reconstructed: the Fad.js evaluation figure relating speculation
success to decoding speed — constant-structure streams hit the compiled
fast path; shape churn forces deoptimization back to the generic parser.

Expected shape: hit rate ~100% and the best speedup for one stable shape;
hit rate and speedup degrade as the number of interleaved shapes exceeds
the inline-cache capacity; results always equal the generic parse.
"""

import pytest

from repro.datasets.generator import Rng
from repro.jsonvalue.parser import parse
from repro.jsonvalue.serializer import dumps
from repro.parsing import SpeculativeDecoder

from helpers import emit, table, wall_ms

N = 1500


def _stream(shapes: int, seed: int = 8) -> list[str]:
    """A flat-record stream cycling through ``shapes`` distinct shapes."""
    rng = Rng(seed)
    lines = []
    for i in range(N):
        s = i % shapes
        record = {f"k{s}_{j}": rng.random.randint(0, 10**6) for j in range(4)}
        record["label"] = rng.word()
        record["shape"] = s
        lines.append(dumps(record))
    return lines


def test_e08_speculative_decode_speed(benchmark):
    lines = _stream(1)
    decoder = SpeculativeDecoder()

    def run():
        return [decoder.decode(line) for line in lines]

    results = benchmark(run)
    assert len(results) == N


def test_e08_stability_curve(benchmark):
    t_generic = wall_ms(lambda: [parse(line) for line in _stream(1)], repeat=2)
    rows = []
    hit_rates = []
    for shapes in (1, 2, 4, 8, 16):
        lines = _stream(shapes)
        decoder = SpeculativeDecoder(cache_size=4)
        t_spec = wall_ms(
            lambda d=decoder, ls=lines: [d.decode(line) for line in ls], repeat=2
        )
        # Correctness on a sample.
        fresh = SpeculativeDecoder(cache_size=4)
        for line in lines[:50]:
            assert fresh.decode(line) == parse(line)
        hit_rates.append(decoder.stats.hit_rate)
        rows.append(
            [
                shapes,
                f"{decoder.stats.hit_rate:6.1%}",
                decoder.stats.deopts,
                f"{t_generic:7.1f}",
                f"{t_spec:7.1f}",
                f"{t_generic / t_spec:5.2f}x",
            ]
        )
    # Stable streams speculate better than megamorphic ones.
    assert hit_rates[0] > hit_rates[-1]
    emit(
        "E8-fadjs-speculation",
        table(
            ["shapes", "hit rate", "deopts", "generic ms", "speculative ms", "speedup"],
            rows,
        ),
    )
    lines = _stream(1)
    decoder = SpeculativeDecoder()
    benchmark(lambda: [decoder.decode(line) for line in lines[:200]])
