"""E13 — Ablations of the fast-parser design choices.

Each ablation disables one mechanism the surveyed papers credit for their
speed, quantifying its contribution:

- **index depth** (Mison): building leveled bitmaps only to the
  projection's depth vs indexing the full nesting depth — the paper's
  "build only what the query needs" argument;
- **speculation** (Mison): pattern-cache probing vs always scanning the
  member list for projected keys;
- **inline-cache size** (Fad.js): hit rate on a 6-shape stream as the
  template cache grows through the monomorphic→polymorphic range;
- **encoder speculation** (Fad.js encode): generic serializer vs
  shape-template encoding on a stable stream.
"""

import pytest

from repro.datasets import ndjson_lines, tweets
from repro.datasets.generator import Rng
from repro.jsonvalue.serializer import dumps
from repro.parsing import MisonParser, SpeculativeDecoder, SpeculativeEncoder
from repro.parsing.structural import StructuralIndex

from helpers import emit, table, wall_ms

LINES = ndjson_lines(tweets(400, seed=13, delete_fraction=0.0))
PROJECTION = ["id", "lang"]  # depth-1 projection on deeply nested records


def test_e13_index_depth_ablation(benchmark):
    """Index only to projection depth (1) vs the full document depth."""
    t_shallow = wall_ms(
        lambda: [StructuralIndex.build(line, levels=1) for line in LINES], repeat=2
    )
    t_deep = wall_ms(
        lambda: [StructuralIndex.build(line, levels=8) for line in LINES], repeat=2
    )
    rows = [
        ["levels=1 (projection depth)", f"{t_shallow:8.1f}"],
        ["levels=8 (full depth)", f"{t_deep:8.1f}"],
        ["overhead of deep indexing", f"{t_deep / t_shallow:8.2f}x"],
    ]
    emit("E13a-index-depth", table(["configuration", "ms / 400 records"], rows))
    benchmark(lambda: StructuralIndex.build(LINES[0], levels=1))


class _NoSpeculationParser(MisonParser):
    """Ablation: the pattern cache never remembers anything."""

    def _project_object(self, index, tree, open_pos, close_pos, level):
        self._pattern.clear()  # forget everything before each object
        return super()._project_object(index, tree, open_pos, close_pos, level)


def test_e13_speculation_ablation(benchmark):
    speculating = MisonParser(PROJECTION)
    t_spec = wall_ms(
        lambda: [speculating.parse_projected(line) for line in LINES], repeat=2
    )
    scanning = _NoSpeculationParser(PROJECTION)
    t_scan = wall_ms(
        lambda: [scanning.parse_projected(line) for line in LINES], repeat=2
    )
    assert speculating.stats.hit_rate > 0.9
    rows = [
        ["with pattern cache", f"{t_spec:8.1f}", f"{speculating.stats.hit_rate:6.1%}"],
        ["scan every object", f"{t_scan:8.1f}", "-"],
        ["speculation saves", f"{(1 - t_spec / t_scan) * 100:7.1f}%", ""],
    ]
    emit(
        "E13b-mison-speculation",
        table(["configuration", "ms / 400 records", "hit rate"], rows),
    )
    parser = MisonParser(PROJECTION)
    benchmark(lambda: [parser.parse_projected(line) for line in LINES[:50]])


def _shape_stream(shapes: int, n: int = 1200) -> list[str]:
    rng = Rng(131)
    lines = []
    for i in range(n):
        s = i % shapes
        lines.append(
            dumps({f"f{s}_{j}": rng.random.randint(0, 999) for j in range(3)})
        )
    return lines


def test_e13_cache_size_ablation(benchmark):
    lines = _shape_stream(6)
    rows = []
    hit_rates = []
    for cache_size in (1, 2, 4, 6, 8):
        decoder = SpeculativeDecoder(cache_size=cache_size)
        for line in lines:
            decoder.decode(line)
        hit_rates.append(decoder.stats.hit_rate)
        rows.append(
            [cache_size, f"{decoder.stats.hit_rate:6.1%}", decoder.stats.deopts]
        )
    # Hit rate jumps once the cache holds all six shapes.
    assert hit_rates[-1] > 0.9
    assert hit_rates[0] < 0.5
    emit(
        "E13c-fadjs-cache-size",
        table(["cache size", "hit rate (6 shapes)", "deopts"], rows),
    )
    decoder = SpeculativeDecoder(cache_size=8)
    benchmark(lambda: [decoder.decode(line) for line in lines[:200]])


def test_e13_encoder_ablation(benchmark):
    docs = [
        {"id": i, "label": f"row_{i}", "score": i * 0.5, "ok": i % 2 == 0}
        for i in range(1500)
    ]
    t_generic = wall_ms(lambda: [dumps(d) for d in docs], repeat=2)
    encoder = SpeculativeEncoder()
    t_spec = wall_ms(lambda: [encoder.encode(d) for d in docs], repeat=2)
    fresh = SpeculativeEncoder()
    assert [fresh.encode(d) for d in docs] == [dumps(d) for d in docs]
    rows = [
        ["generic dumps", f"{t_generic:8.1f}", "-"],
        ["speculative encoder", f"{t_spec:8.1f}", f"{fresh.stats.hit_rate:6.1%}"],
        ["speedup", f"{t_generic / t_spec:8.2f}x", ""],
    ]
    emit(
        "E13d-encoder-speculation",
        table(["configuration", "ms / 1500 records", "hit rate"], rows),
    )
    encoder2 = SpeculativeEncoder()
    benchmark(lambda: [encoder2.encode(d) for d in docs[:200]])
