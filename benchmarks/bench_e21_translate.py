"""E21 — the translation pipeline on interned types, end to end.

Artifact reconstructed: tutorial §5 measures schema-aware translation
(Avro rows + Dremel columns) against the schema-oblivious baseline; PR 8
rebuilt the pipeline on interned types — resolution and Avro/Parquet
schema compilation memoized on node identity, documents streamed once
through the shredder and the fused row encoder, and a single-pass
``infer→translate→write`` flow straight from a corpus file.

Three sections, all recorded in ``BENCH_translate.json``:

- **pipeline**: the seed path (parse the corpus to DOMs, infer by
  per-document ``type_of`` + merge, batch shred/encode) vs. the interned
  single-pass flow (``translate_report_path``: bytes-fold inference,
  Fad.js-style speculative decode, fused shred/encode) on the same file
  — measured on a constant-structure "flat" corpus (the speculable
  telemetry shape, asserted ≥2x) and a "nested" corpus with arrays and
  numeric drift (never speculable, the generic-parse worst case);
- **fallbacks**: union fallbacks on the tweets corpus under the seed
  resolve rule vs. the reworked resolver (nullable records and nullable
  numeric unions now stay typed) — the quality delta of PR 8's bugfixes;
- **corpora**: typed-column fraction and output sizes across the three
  benchmark corpora through the interned pipeline.

Identity gates always run: the interned flow must produce byte-identical
Avro rows and an identical canonical column-store rendering to the DOM
reference.  The ≥2x pipeline speedup is asserted only under
``REPRO_BENCH_ASSERT=1``; ``REPRO_BENCH_FULL=1`` grows the corpus.
"""

from __future__ import annotations

import json
import os
import random
import time

from repro.datasets import github_events, nyt_articles, tweets
from repro.jsonvalue.parser import parse
from repro.jsonvalue.serializer import dumps
from repro.translation import (
    column_store_json,
    resolve_type,
    schema_aware_translate,
    translate_interned,
    translate_report_path,
)
from repro.types import Equivalence, merge_all, type_of
from repro.types.terms import ArrType, AtomType, RecType, UnionType

from helpers import RESULTS_DIR, emit, table

FULL = bool(os.environ.get("REPRO_BENCH_FULL"))
ASSERT_TIMING = bool(os.environ.get("REPRO_BENCH_ASSERT"))

DOCS = 500_000 if FULL else 50_000


def _flat_corpus_lines(n: int) -> list[str]:
    """Constant-structure records (telemetry/log shape): every line has
    the same keys in the same order — the stream the speculative decoder
    turns into template matches."""
    rng = random.Random(21)
    return [
        dumps(
            {
                "id": i,
                "user": {
                    "name": f"user-{rng.randint(0, 10**6)}",
                    "verified": bool(i % 7),
                },
                "score": rng.random() * 100,
                "geo": {"lat": rng.random() * 90, "lon": rng.random() * 180},
                "level": rng.randint(0, 5),
            }
        )
        for i in range(n)
    ]


def _nested_corpus_lines(n: int) -> list[str]:
    """Variable-structure records: arrays (never speculable), numeric
    drift (int|flt) and a nullable record — the generic-parse worst case
    for the single-pass flow."""
    rng = random.Random(22)
    lines = []
    for i in range(n):
        doc = {
            "id": i,
            "user": {"name": f"user-{rng.randint(0, 10**6)}", "verified": bool(i % 7)},
            "score": rng.random() * 100 if i % 3 else rng.randint(0, 100),
            "geo": {"lat": rng.random() * 90, "lon": rng.random() * 180}
            if i % 5
            else None,
            "tags": ["a", "b", "c"][: rng.randint(0, 3)],
        }
        lines.append(dumps(doc))
    return lines


def _timed(fn, repeat=2):
    best, best_result = None, None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best, best_result = elapsed, result
    return best, best_result


def _seed_translate(path: str):
    """The seed pipeline: parse the file to DOMs, infer by per-document
    ``type_of`` + merge, then run the batch DOM translation."""
    with open(path, "r", encoding="utf-8") as handle:
        docs = [parse(line) for line in handle if line.strip()]
    inferred = merge_all((type_of(d) for d in docs), Equivalence.KIND)
    return schema_aware_translate(docs, inferred)


def _seed_fallback_paths(t, path=""):
    """The seed resolve rule, reimplemented for the quality comparison:
    a union survives only as null + one atom, or as exactly int|flt."""
    out = []
    if isinstance(t, ArrType):
        out.extend(_seed_fallback_paths(t.item, f"{path}.[]" if path else "[]"))
    elif isinstance(t, RecType):
        for f in t.fields:
            out.extend(
                _seed_fallback_paths(f.type, f"{path}.{f.name}" if path else f.name)
            )
    elif isinstance(t, UnionType):
        members = list(t.members)
        tags = {m.tag for m in members if isinstance(m, AtomType)}
        nulls = [m for m in members if isinstance(m, AtomType) and m.tag == "null"]
        rest = [m for m in members if not (isinstance(m, AtomType) and m.tag == "null")]
        if nulls and len(rest) == 1 and isinstance(rest[0], AtomType):
            pass  # nullable leaf, representable
        elif tags == {"int", "flt"} and len(members) == 2:
            pass  # widened to num
        else:
            out.append(path)
    return out


def _bench_pipeline(rows, records, tmp_dir, shape, lines, floor):
    path = os.path.join(tmp_dir, f"corpus-{shape}.ndjson")
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line)
            handle.write("\n")

    seed_seconds, seed_report = _timed(lambda: _seed_translate(path))
    interned_seconds, run = _timed(lambda: translate_report_path(path))

    # Identity gates: the interned flow reproduces the reference bytes.
    assert run.translation.avro_rows == seed_report.avro_rows
    assert column_store_json(run.translation.columnar) == column_store_json(
        seed_report.columnar
    )
    assert run.translation.document_count == len(lines)

    record = {
        "corpus_shape": shape,
        "documents": len(lines),
        "input_megabytes": round(os.path.getsize(path) / 1e6, 1),
        "docs_per_sec_seed_dom": round(len(lines) / seed_seconds),
        "docs_per_sec_interned": round(len(lines) / interned_seconds),
        "speedup": round(seed_seconds / interned_seconds, 2),
        "avro_bytes": run.translation.avro_bytes,
        "columnar_bytes": run.translation.columnar_bytes,
    }
    records.append(record)
    rows.append(
        [
            shape,
            len(lines),
            f"{record['input_megabytes']}MB",
            record["docs_per_sec_seed_dom"],
            record["docs_per_sec_interned"],
            f"{record['speedup']:5.2f}x",
        ]
    )
    os.unlink(path)
    if ASSERT_TIMING:
        # Constant-structure streams must clear 2x (memoized schemas +
        # speculative decode + fused encoders); the unspeculable nested
        # corpus still has to win, just by less.
        assert record["speedup"] >= floor, shape


def _bench_fallbacks(rows, records):
    docs = tweets(5_000 if FULL else 2_000)
    inferred = merge_all((type_of(d) for d in docs), Equivalence.KIND)
    seed_paths = _seed_fallback_paths(inferred)
    _, new_paths = resolve_type(inferred)
    report = translate_interned(docs, inferred)
    record = {
        "corpus": "twitter",
        "documents": len(docs),
        "seed_fallbacks": len(seed_paths),
        "seed_paths": seed_paths,
        "resolved_fallbacks": len(new_paths),
        "typed_fraction": round(report.typed_fraction, 4),
    }
    records.append(record)
    rows.append(
        [
            "twitter",
            len(docs),
            len(seed_paths),
            len(new_paths),
            f"{report.typed_fraction:6.1%}",
        ]
    )
    # The nullable-record fix must recover the tweets coordinate
    # subtrees the seed rule degraded to JSON text.
    assert len(seed_paths) > len(new_paths)
    assert new_paths == []


def _bench_corpora(rows, records):
    count = 3_000 if FULL else 1_000
    for name, make in (
        ("twitter", tweets),
        ("github", github_events),
        ("nyt", nyt_articles),
    ):
        docs = make(count)
        report = translate_interned(docs)
        record = {
            "corpus": name,
            "documents": report.document_count,
            "input_bytes": report.input_bytes,
            "avro_bytes": report.avro_bytes,
            "columnar_bytes": report.columnar_bytes,
            "typed_fraction": round(report.typed_fraction, 4),
            "fallbacks": report.fallback_count,
        }
        records.append(record)
        rows.append(
            [
                name,
                report.document_count,
                report.input_bytes,
                report.avro_bytes,
                report.columnar_bytes,
                f"{report.typed_fraction:6.1%}",
            ]
        )


def test_e21_translate(tmp_path):
    pipeline_rows: list[list] = []
    pipeline_records: list[dict] = []
    _bench_pipeline(
        pipeline_rows,
        pipeline_records,
        str(tmp_path),
        "flat",
        _flat_corpus_lines(DOCS),
        2.0,
    )
    _bench_pipeline(
        pipeline_rows,
        pipeline_records,
        str(tmp_path),
        "nested",
        _nested_corpus_lines(DOCS),
        1.1,
    )

    fallback_rows: list[list] = []
    fallback_records: list[dict] = []
    _bench_fallbacks(fallback_rows, fallback_records)

    corpora_rows: list[list] = []
    corpora_records: list[dict] = []
    _bench_corpora(corpora_rows, corpora_records)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_translate.json").write_text(
        json.dumps(
            {
                "experiment": "e21-translate",
                "pipeline_rows": pipeline_records,
                "fallback_rows": fallback_records,
                "corpora_rows": corpora_records,
            },
            indent=2,
        )
        + "\n"
    )
    emit(
        "E21-translate",
        table(
            ["corpus", "docs", "input", "seed DOM docs/s", "interned docs/s", "speedup"],
            pipeline_rows,
        )
        + "\n\n"
        + table(
            ["corpus", "docs", "seed fallbacks", "resolved fallbacks", "typed"],
            fallback_rows,
        )
        + "\n\n"
        + table(
            ["corpus", "docs", "input B", "avro B", "columnar B", "typed"],
            corpora_rows,
        ),
    )
