"""E9 — Schema-aware vs schema-oblivious data translation (tutorial §5).

Artifact reconstructed: the opportunity the tutorial closes with — with a
schema, heterogeneous JSON converts into compact typed formats (Avro-like
rows, Parquet-like columns); without one, data stays JSON text.

Expected shape: schema-aware columnar and row outputs are substantially
smaller than the JSON text baseline on regular collections; translation
quality (fraction of typed columns) drops as heterogeneity rises, with
the escape-hatch JSON columns absorbing the unresolvable unions.
"""

import pytest

from repro.datasets import github_events, heterogeneous_collection, nyt_articles
from repro.translation import (
    assemble,
    schema_aware_translate,
    schema_oblivious_translate,
)

from helpers import emit, table, wall_ms

COLLECTIONS = {
    "nyt_articles": nyt_articles(300, seed=9),
    "github_events": github_events(300, seed=9),
    "heterogeneous+noise": heterogeneous_collection(300, kind_noise=0.005, seed=9),
}


def test_e09_translate_speed(benchmark):
    docs = COLLECTIONS["nyt_articles"]
    report = benchmark(lambda: schema_aware_translate(docs))
    assert report.document_count == len(docs)


def test_e09_size_table(benchmark):
    rows = []
    for name, docs in COLLECTIONS.items():
        aware = schema_aware_translate(docs)
        oblivious = schema_oblivious_translate(docs)
        ms = wall_ms(lambda d=docs: schema_aware_translate(d), repeat=1)
        rows.append(
            [
                name,
                oblivious.total_bytes,
                aware.columnar_bytes,
                f"{oblivious.total_bytes / aware.columnar_bytes:5.2f}x",
                aware.avro_bytes,
                f"{aware.typed_fraction:6.1%}",
                aware.fallback_count,
                f"{ms:7.1f}",
            ]
        )
        if aware.fallback_count == 0:
            rebuilt = assemble(aware.columnar)
            assert len(rebuilt) == len(docs)
        assert aware.columnar_bytes < oblivious.total_bytes
    emit(
        "E9-translation",
        table(
            [
                "collection",
                "JSON bytes",
                "columnar bytes",
                "ratio",
                "avro bytes",
                "typed cols",
                "fallbacks",
                "ms",
            ],
            rows,
        ),
    )
    docs = COLLECTIONS["github_events"]
    benchmark(lambda: schema_oblivious_translate(docs))
