"""E5 — Counting types: cardinality information vs size overhead.

Artifact reconstructed: the DBPL '17 counting-types trade-off — the
decorated schema answers presence/frequency questions, at a bounded size
overhead over the plain parametric type.

Expected shape: overhead stays within a small constant factor (counters
add one node per type node at worst); presence ratios reproduce the
generator's optional-field probabilities.
"""

import pytest

from repro.datasets import heterogeneous_collection, tweets
from repro.inference import field_presence_ratios, infer_counted, infer_type
from repro.types import Equivalence

from helpers import emit, table, wall_ms


def test_e05_counting_speed(benchmark):
    docs = heterogeneous_collection(400, seed=5)
    counted = benchmark(lambda: infer_counted(docs, Equivalence.KIND))
    assert counted.count == 400


def test_e05_overhead_table(benchmark):
    collections = {
        "heterogeneous p=0.25": heterogeneous_collection(
            300, optional_probability=0.25, seed=1
        ),
        "heterogeneous p=0.75": heterogeneous_collection(
            300, optional_probability=0.75, seed=2
        ),
        "tweets": tweets(300, seed=3, delete_fraction=0.0),
    }
    rows = []
    for name, docs in collections.items():
        plain = infer_type(docs, Equivalence.KIND)
        counted = infer_counted(docs, Equivalence.KIND)
        ratios = field_presence_ratios(counted)
        opt_ratio = ratios.get("opt_note")
        rows.append(
            [
                name,
                plain.size(),
                counted.size(),
                f"{counted.size() / plain.size():4.2f}x",
                f"{opt_ratio:5.1%}" if opt_ratio is not None else "-",
            ]
        )
        assert counted.plain() == plain  # the commuting square
        assert counted.size() <= 3 * plain.size()
    # The generator's optionality shows up in the measured ratio.
    p25 = float(rows[0][4].rstrip("%")) / 100
    p75 = float(rows[1][4].rstrip("%")) / 100
    assert p25 < p75
    emit(
        "E5-counting-overhead",
        table(
            ["collection", "plain size", "counted size", "overhead", "opt_note presence"],
            rows,
        ),
    )
    docs = collections["tweets"]
    benchmark(lambda: infer_counted(docs, Equivalence.KIND))
