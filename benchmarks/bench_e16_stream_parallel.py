"""E16 — zero-materialization streaming & the batched parallel text feed.

Artifact reconstructed: the end-to-end text→type throughput of streaming
inference (bytes on disk to merged type), before and after fusing the
pipeline, plus the scaling of the real multiprocessing mode once workers
receive raw line batches instead of re-pickled documents.

Three measurements over NDJSON tweet corpora:

- **dom**: the DOM path — ``parse(line)`` then the fused value encoder
  (what the CLI's serial path did before this experiment);
- **pr2-frames**: the PR 2 streaming path, reconstructed here verbatim —
  ``iter_events`` driving per-document ``_Frame`` objects and an
  interned builder (one ``JsonEvent`` per token, one frame per open
  container, one dict per record);
- **fused**: the text→type pipeline — the lexer's tokens drive the
  shape caches directly (:meth:`EventTypeEncoder.encode_text` via
  :meth:`TypeAccumulator.add_text`), nothing materialised in between.

The parallel rows compare the serial fused fold against
``infer_distributed_text`` with 2 and 4 workers, batched-pickle and
shared-memory feeds.

Emits ``BENCH_stream.json`` under ``benchmarks/results/``.  Timing
ratios are asserted only under ``REPRO_BENCH_ASSERT=1`` (wall clock on
shared CI runners is flaky); the identity gates — every path lands on
the interned-identical type — always run.  Acceptance: fused ≥ 2x the
PR 2 streaming path at 50k docs (the JSON records the trajectory).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from typing import Any, Optional

from repro.datasets import ndjson_lines, tweets
from repro.inference.distributed import infer_distributed_text
from repro.inference.engine import TypeAccumulator
from repro.jsonvalue.events import JsonEventType, iter_events
from repro.jsonvalue.parser import parse
from repro.types import Type
from repro.types.intern import InternTable, global_table
from repro.types.terms import BOOL, BOT, FLT, INT, NULL, STR

from helpers import RESULTS_DIR, emit, table

SIZES = [10_000, 50_000]
if os.environ.get("REPRO_BENCH_FULL"):
    SIZES.append(100_000)

ASSERT_TIMING = bool(os.environ.get("REPRO_BENCH_ASSERT"))


# --------------------------------------------------------------------------
# The PR 2 streaming path, reconstructed as the baseline: event objects,
# per-document frames, dict fields per record.
# --------------------------------------------------------------------------


class _PR2Builder:
    """The PR 2 interned event builder (probe-first leaves/containers)."""

    __slots__ = ("table", "_scalars", "_empty_arr")

    def __init__(self, table: InternTable) -> None:
        self.table = table
        self._scalars = {
            type(None): table.intern(NULL),
            bool: table.intern(BOOL),
            int: table.intern(INT),
            float: table.intern(FLT),
            str: table.intern(STR),
        }
        self._empty_arr = table.arr_of(table.intern(BOT))

    def scalar(self, value: Any) -> Type:
        return self._scalars[type(value)]

    def record(self, fields: dict[str, Type]) -> Type:
        field_of = self.table.field_of
        return self.table.rec_of([field_of(name, t) for name, t in fields.items()])

    def array(self, items: list[Type]) -> Type:
        if not items:
            return self._empty_arr
        return self.table.arr_of(self.table.union_of(items))


class _PR2Frame:
    """One open container while typing the stream (the PR 2 shape)."""

    __slots__ = ("is_object", "fields", "items", "pending_key")

    def __init__(self, is_object: bool) -> None:
        self.is_object = is_object
        self.fields: dict[str, Type] = {}
        self.items: list[Type] = []
        self.pending_key: Optional[str] = None


def _pr2_type_of_text(text: str, builder: _PR2Builder) -> Type:
    scalar = builder.scalar
    stack: list[_PR2Frame] = []
    result: Optional[Type] = None
    for event in iter_events(text):
        etype = event.type
        if etype is JsonEventType.KEY:
            stack[-1].pending_key = event.value
        elif etype is JsonEventType.VALUE:
            t = scalar(event.value)
            if stack:
                frame = stack[-1]
                if frame.is_object:
                    frame.fields[frame.pending_key] = t
                    frame.pending_key = None
                else:
                    frame.items.append(t)
            else:
                result = t
        elif etype is JsonEventType.START_OBJECT:
            stack.append(_PR2Frame(True))
        elif etype is JsonEventType.START_ARRAY:
            stack.append(_PR2Frame(False))
        else:
            frame = stack.pop()
            t = (
                builder.record(frame.fields)
                if frame.is_object
                else builder.array(frame.items)
            )
            if stack:
                parent = stack[-1]
                if parent.is_object:
                    parent.fields[parent.pending_key] = t
                    parent.pending_key = None
                else:
                    parent.items.append(t)
            else:
                result = t
    assert result is not None
    return result


# --------------------------------------------------------------------------


def _bench_stream(rows, records):
    for n in SIZES:
        lines = ndjson_lines(tweets(n, seed=16))

        dom_acc = TypeAccumulator(table=InternTable())
        start = time.perf_counter()
        for line in lines:
            dom_acc.add(parse(line))
        seconds_dom = time.perf_counter() - start

        pr2_acc = TypeAccumulator(table=InternTable())
        pr2_builder = _PR2Builder(pr2_acc.table)
        start = time.perf_counter()
        for line in lines:
            pr2_acc.add_type(_pr2_type_of_text(line, pr2_builder))
        seconds_pr2 = time.perf_counter() - start

        fused_acc = TypeAccumulator(table=InternTable())
        add_text = fused_acc.add_text
        start = time.perf_counter()
        for line in lines:
            add_text(line)
        seconds_fused = time.perf_counter() - start

        # Identity gate: all three pipelines land on the same canonical
        # node once re-interned into one table.
        verify = global_table()
        assert (
            verify.canonical(fused_acc.result())
            is verify.canonical(pr2_acc.result())
            is verify.canonical(dom_acc.result())
        )

        speedup_pr2 = seconds_pr2 / seconds_fused
        speedup_dom = seconds_dom / seconds_fused
        record = {
            "documents": n,
            "docs_per_sec_dom": round(n / seconds_dom),
            "docs_per_sec_pr2_frames": round(n / seconds_pr2),
            "docs_per_sec_fused": round(n / seconds_fused),
            "speedup_vs_pr2_frames": round(speedup_pr2, 2),
            "speedup_vs_dom": round(speedup_dom, 2),
        }
        records.append(record)
        rows.append(
            [
                n,
                record["docs_per_sec_dom"],
                record["docs_per_sec_pr2_frames"],
                record["docs_per_sec_fused"],
                f"{speedup_pr2:5.1f}x",
                f"{speedup_dom:5.1f}x",
            ]
        )
    by_docs = {r["documents"]: r for r in records}
    # Acceptance: >= 2x over the PR 2 streaming path at the 50k fold.
    if ASSERT_TIMING:
        assert by_docs[50_000]["speedup_vs_pr2_frames"] >= 2.0


def _bench_parallel(rows, records):
    n = max(SIZES)
    lines = ndjson_lines(tweets(n, seed=16))

    start = time.perf_counter()
    serial_acc = TypeAccumulator(table=InternTable())
    for line in lines:
        serial_acc.add_text(line)
    seconds_serial = time.perf_counter() - start
    reference = global_table().canonical(serial_acc.result())

    cpu = multiprocessing.cpu_count()
    configs = [(2, False), (4, False), (4, True)]
    records.append(
        {
            "feed": "serial",
            "jobs": 1,
            "documents": n,
            "docs_per_sec": round(n / seconds_serial),
            "speedup_vs_serial": 1.0,
            "cpus": cpu,
        }
    )
    rows.append([n, "serial", 1, round(n / seconds_serial), "  1.0x"])
    for jobs, shm in configs:
        start = time.perf_counter()
        run = infer_distributed_text(
            lines, partitions=jobs, processes=jobs, shared_memory=shm
        )
        seconds = time.perf_counter() - start
        assert global_table().canonical(run.result) is reference
        assert run.document_count == n
        feed = "shared-memory" if shm else "batched-pickle"
        speedup = seconds_serial / seconds
        records.append(
            {
                "feed": feed,
                "jobs": jobs,
                "documents": n,
                "docs_per_sec": round(n / seconds),
                "speedup_vs_serial": round(speedup, 2),
                "cpus": cpu,
            }
        )
        rows.append([n, feed, jobs, round(n / seconds), f"{speedup:5.1f}x"])


def test_e16_stream_parallel():
    stream_rows: list[list] = []
    stream_records: list[dict] = []
    _bench_stream(stream_rows, stream_records)

    parallel_rows: list[list] = []
    parallel_records: list[dict] = []
    _bench_parallel(parallel_rows, parallel_records)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_stream.json").write_text(
        json.dumps(
            {
                "experiment": "e16-stream-parallel",
                "stream_rows": stream_records,
                "parallel_rows": parallel_records,
            },
            indent=2,
        )
        + "\n"
    )
    emit(
        "E16-stream-parallel",
        table(
            ["docs", "dom/s", "pr2-frames/s", "fused/s", "vs pr2", "vs dom"],
            stream_rows,
        )
        + "\n\n"
        + table(["docs", "feed", "jobs", "docs/s", "vs serial"], parallel_rows),
    )
