"""E20 — compressed corpora at wire speed: chunked decode into the fold.

Artifact reconstructed: real public NDJSON corpora ship gzip-compressed
(and increasingly zstd-compressed), so PR 7 taught the ingestion layer
to stream gzip/zstd straight into the bytes fold — magic-byte
detection, line-aligned decompressed blocks (never the whole corpus in
memory), and a worker-parallel decompress+fold over independent gzip
members priced by a decompress-rate calibration constant.

Three sections, all recorded in ``BENCH_compressed.json``:

- **decode**: docs/s of the chunked gzip fold vs. the plain mmap fold
  on the same corpus bytes, plus the on-disk compression ratio — the
  cost of decoding at ingest rather than in a separate gunzip pass;
- **members**: the serial compressed fold vs. the parallel member fold
  at 2 and 4 workers on a multi-member corpus (the container layout
  concatenated gzip ships naturally);
- **scheduler**: ``plan_compressed_schedule`` keeping single-member
  streams serial (one stream decodes sequentially) and routing
  multi-member corpora through the modeled decompress-rate win.

Identity gates always run: every compressed fold must intern to the
object-identical type of the plain fold.  Timing ratios are asserted
only under ``REPRO_BENCH_ASSERT=1`` (wall clock on shared single-CPU
runners is meaningless for a 4-worker pipeline);
``REPRO_BENCH_FULL=1`` grows the corpora.
"""

from __future__ import annotations

import json
import os
import random
import time

from repro.datasets import compress_corpus, open_corpus, zstd_available
from repro.datasets.compressed import estimate_ratio, member_candidates
from repro.inference import (
    accumulate_ranges,
    fold_compressed,
    infer_compressed_parallel,
    plan_compressed_schedule,
)
from repro.jsonvalue.serializer import dumps
from repro.types.intern import global_table

from helpers import RESULTS_DIR, emit, table

FULL = bool(os.environ.get("REPRO_BENCH_FULL"))
ASSERT_TIMING = bool(os.environ.get("REPRO_BENCH_ASSERT"))

DOCS = 400_000 if FULL else 40_000


def _corpus_lines(n: int) -> list[str]:
    rng = random.Random(20)
    return [
        dumps(
            {
                "id": i,
                "name": f"user-{rng.randint(0, 10**6)}",
                "score": rng.random() * 100,
                "active": bool(i % 3),
                "tags": ["a", "b", "c"][: rng.randint(0, 3)] or None,
            }
        )
        for i in range(n)
    ]


def _timed(fn, repeat=2):
    best, best_result = None, None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best, best_result = elapsed, result
    return best, best_result


def _bench_decode(rows, records, tmp_dir, lines):
    """Chunked decompress-and-fold vs. the plain mmap fold."""
    verify = global_table()
    plain_path = os.path.join(tmp_dir, "corpus.ndjson")
    with open(plain_path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line)
            handle.write("\n")
    plain_bytes = os.path.getsize(plain_path)
    with open_corpus(plain_path) as corpus:
        plain_seconds, plain_acc = _timed(
            lambda c=corpus: accumulate_ranges(c.buffer(), c.spans)
        )
    reference = verify.canonical(plain_acc.result())

    formats = ["gzip"] + (["zstd"] if zstd_available() else [])
    for fmt in formats:
        packed = os.path.join(tmp_dir, f"corpus.{fmt}")
        compress_corpus(packed, lines, format=fmt)
        packed_bytes = os.path.getsize(packed)
        fold_seconds, acc = _timed(lambda p=packed: fold_compressed(p))
        # Identity gate: decoding at ingest changes nothing downstream.
        assert verify.canonical(acc.result()) is reference, fmt
        assert acc.document_count == len(lines)
        record = {
            "format": fmt,
            "documents": len(lines),
            "plain_megabytes": round(plain_bytes / 1e6, 1),
            "compression_ratio": round(plain_bytes / packed_bytes, 2),
            "docs_per_sec_plain_fold": round(len(lines) / plain_seconds),
            "docs_per_sec_compressed_fold": round(len(lines) / fold_seconds),
            "decode_overhead": round(fold_seconds / plain_seconds, 3),
        }
        records.append(record)
        rows.append(
            [
                fmt,
                len(lines),
                f"{record['compression_ratio']:.2f}x",
                record["docs_per_sec_plain_fold"],
                record["docs_per_sec_compressed_fold"],
                record["decode_overhead"],
            ]
        )
        os.unlink(packed)
    os.unlink(plain_path)
    if ASSERT_TIMING:
        # Chunked decode must stay within 2.5x of the raw mmap fold —
        # the decompressor runs at memory-bandwidth rates next to the
        # JSON scan.
        assert max(r["decode_overhead"] for r in records) <= 2.5


def _bench_members(rows, records, tmp_dir, lines):
    """Serial compressed fold vs. the parallel member fold."""
    verify = global_table()
    packed = os.path.join(tmp_dir, "members.gz")
    member_lines = max(1, len(lines) // 16)
    members = compress_corpus(packed, lines, member_lines=member_lines)
    candidates = member_candidates(packed)
    serial_seconds, serial_acc = _timed(lambda: fold_compressed(packed))
    reference = verify.canonical(serial_acc.result())
    runs = {}
    for label, processes in (("2p", 2), ("4p", 4)):
        seconds, run = _timed(
            lambda p=processes: infer_compressed_parallel(packed, processes=p)
        )
        assert run is not None, "multi-member corpus must parallelize"
        # Identity gate: member-parallel decode is the same monoid.
        assert verify.canonical(run.result) is reference
        assert run.document_count == len(lines)
        runs[label] = seconds
    record = {
        "documents": len(lines),
        "members": members,
        "member_candidates": len(candidates),
        "docs_per_sec_serial": round(len(lines) / serial_seconds),
        "docs_per_sec_2p": round(len(lines) / runs["2p"]),
        "docs_per_sec_4p": round(len(lines) / runs["4p"]),
        "speedup_4p_vs_serial": round(serial_seconds / runs["4p"], 2),
    }
    records.append(record)
    rows.append(
        [
            len(lines),
            members,
            record["docs_per_sec_serial"],
            record["docs_per_sec_2p"],
            record["docs_per_sec_4p"],
            f"{record['speedup_4p_vs_serial']:5.2f}x",
        ]
    )
    os.unlink(packed)
    if ASSERT_TIMING:
        assert record["speedup_4p_vs_serial"] >= 1.5


def _bench_scheduler(rows, records, tmp_dir, lines):
    """plan_compressed_schedule: single-member serial, multi-member
    modeled against the decompress-rate constant."""
    single = os.path.join(tmp_dir, "single.gz")
    compress_corpus(single, lines)
    multi = os.path.join(tmp_dir, "multi.gz")
    compress_corpus(multi, lines, member_lines=max(1, len(lines) // 16))

    pinned = {
        "REPRO_WORKER_STARTUP_SECONDS": "0.001",
        "REPRO_SCAN_BYTES_PER_SECOND": "80e6",
        "REPRO_DECOMPRESS_BYTES_PER_SECOND": "250e6",
    }
    previous = {k: os.environ.get(k) for k in pinned}
    os.environ.update(pinned)
    try:
        plan_single = plan_compressed_schedule(single, jobs=4)
        plan_multi = plan_compressed_schedule(multi, jobs=4)
        ratio = estimate_ratio(multi)
    finally:
        for key, value in previous.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value

    # One compressed stream decodes sequentially, whatever the budget.
    assert not plan_single.parallel
    # The multi-member plan may only parallelize when CPUs exist for it.
    if plan_multi.cpus > 1:
        assert plan_multi.parallel
    assert ratio > 1.0
    for shape, plan in (
        ("single member", plan_single),
        ("16-line members", plan_multi),
    ):
        records.append(
            {
                "corpus_shape": shape,
                "parallel": plan.parallel,
                "jobs": plan.jobs,
                "estimated_ratio": round(ratio, 2),
                "reason": plan.reason,
            }
        )
        rows.append([shape, "parallel" if plan.parallel else "serial", plan.jobs])
    os.unlink(single)
    os.unlink(multi)


def test_e20_compressed(tmp_path):
    lines = _corpus_lines(DOCS)

    decode_rows: list[list] = []
    decode_records: list[dict] = []
    _bench_decode(decode_rows, decode_records, str(tmp_path), lines)

    member_rows: list[list] = []
    member_records: list[dict] = []
    _bench_members(member_rows, member_records, str(tmp_path), lines)

    scheduler_rows: list[list] = []
    scheduler_records: list[dict] = []
    _bench_scheduler(scheduler_rows, scheduler_records, str(tmp_path), lines)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_compressed.json").write_text(
        json.dumps(
            {
                "experiment": "e20-compressed",
                "zstd_available": zstd_available(),
                "decode_rows": decode_records,
                "member_rows": member_records,
                "scheduler_rows": scheduler_records,
            },
            indent=2,
        )
        + "\n"
    )
    emit(
        "E20-compressed",
        table(
            ["format", "docs", "ratio", "plain docs/s", "compressed docs/s", "overhead"],
            decode_rows,
        )
        + "\n\n"
        + table(
            ["docs", "members", "serial docs/s", "2p docs/s", "4p docs/s", "speedup"],
            member_rows,
        )
        + "\n\n"
        + table(["corpus shape", "plan", "jobs"], scheduler_rows),
    )
