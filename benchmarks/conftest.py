"""Benchmark-suite configuration.

Makes ``helpers`` importable when pytest is invoked from the repository
root (``pytest benchmarks/``), and keeps benchmark runs deterministic.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))
