"""E4 — Spark-style inference: type collapse on heterogeneous data.

Artifact reconstructed: the tutorial's §4.1 criticism made quantitative —
"the type language lacks union types, and the inference algorithm resorts
to Str on strongly heterogeneous collections".  We sweep kind-noise and
count fields that collapse to ``string`` despite never containing one,
against the parametric (union-typed) schema that keeps them apart.

Expected shape: collapses grow with noise for Spark and stay at zero for
the union-typed algebra; Spark's schema size stays flat (information is
being *lost*, not compressed).
"""

import pytest

from repro.datasets import github_events
from repro.inference import count_string_collapses, infer_spark_schema, infer_type
from repro.types import Equivalence

from helpers import emit, table, wall_ms

NOISE_LEVELS = [0.0, 0.05, 0.1, 0.2, 0.4]


def test_e04_spark_inference_speed(benchmark):
    docs = github_events(400, seed=4)
    schema = benchmark(lambda: infer_spark_schema(docs))
    assert schema.fields


def test_e04_collapse_table(benchmark):
    rows = []
    for noise in NOISE_LEVELS:
        docs = github_events(300, seed=17, kind_noise=noise)
        collapsed = count_string_collapses(docs)
        spark_schema = infer_spark_schema(docs)
        parametric = infer_type(docs, Equivalence.KIND)
        ms = wall_ms(lambda d=docs: infer_spark_schema(d), repeat=1)
        rows.append(
            [
                f"{noise:4.2f}",
                collapsed,
                len(spark_schema.fields),
                parametric.size(),
                f"{ms:7.1f}",
            ]
        )
    # More noise, more collapse (compare the extremes).
    assert int(rows[-1][1]) >= int(rows[0][1])
    emit(
        "E4-spark-collapse",
        table(
            ["kind noise", "fields collapsed to Str", "spark fields", "parametric size", "spark ms"],
            rows,
        ),
    )
    docs = github_events(300, seed=17, kind_noise=0.2)
    benchmark(lambda: count_string_collapses(docs))
