"""E19 — intra-document parallelism: subtree splitter + parallel fold.

Artifact reconstructed: the corpus shape line parallelism cannot touch —
one (or a few) huge single-line documents — after PR 6 added the
bytes-native structural splitter.  A single linear pass over the mapped
buffer carves the top-level container into top-level-subtree byte
ranges without decoding; workers type the chunk ranges with the
``encode_bytes`` machine; the partials reassemble through the same
interning monoid, so the result is *object-identical* to the serial
fold.  The adaptive scheduler gained a third mode ("subtree", next to
"serial" and "parallel") fed by bytes-rate calibration constants.

Three sections, all recorded in ``BENCH_subtree.json``:

- **subtree**: MB/s of the serial mmap fold vs. the subtree pipeline
  in-process (split overhead floor) and at 4 workers, on single-line
  array-of-records and object-of-rows corpora;
- **ndjson**: the line-parallel regression guard — a normal
  many-small-lines corpus must not split (every line stays under the
  threshold) and must plan a non-subtree mode;
- **scheduler**: the shape probe picking the subtree mode for the huge
  corpus under pinned calibration constants.

Corpus sizes are CI-small by default; ``REPRO_BENCH_FULL=1`` grows the
main corpus past 100 MB.  Timing ratios are asserted only under
``REPRO_BENCH_ASSERT=1`` (wall clock on shared single-CPU runners is
meaningless for a 4-worker pipeline); the identity gates always run.
"""

from __future__ import annotations

import json
import os
import random
import time

from repro.datasets import open_corpus
from repro.inference import distributed as distributed_module
from repro.inference.distributed import infer_subtree_text, plan_schedule
from repro.inference.engine import accumulate_ranges
from repro.jsonvalue.serializer import dumps
from repro.types.intern import global_table

from helpers import RESULTS_DIR, emit, table

FULL = bool(os.environ.get("REPRO_BENCH_FULL"))
ASSERT_TIMING = bool(os.environ.get("REPRO_BENCH_ASSERT"))

# Rows per document: ~115 bytes each, so 60k rows ≈ 7 MB CI-small and
# 900k rows ≈ 105 MB under REPRO_BENCH_FULL.
ROWS = 900_000 if FULL else 60_000


def _record_rows(n: int) -> list[dict]:
    rng = random.Random(19)
    return [
        {
            "id": i,
            "name": f"user-{rng.randint(0, 10**6)}",
            "score": rng.random() * 100,
            "active": bool(i % 3),
            "tags": ["a", "b", "c"][: rng.randint(0, 3)] or None,
        }
        for i in range(n)
    ]


def _write_single_line(path: str, document) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(document))
        handle.write("\n")


def _timed(fn, repeat=2):
    best, best_result = None, None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best, best_result = elapsed, result
    return best, best_result


def _bench_subtree(rows, records, tmp_dir):
    verify = global_table()
    shapes = [
        ("array-of-records", _record_rows(ROWS)),
        ("object-of-rows", {"meta": {"v": 1}, "rows": _record_rows(ROWS // 2)}),
    ]
    for name, document in shapes:
        path = os.path.join(tmp_dir, f"{name}.ndjson")
        _write_single_line(path, document)
        size_mb = os.path.getsize(path) / 1e6
        with open_corpus(path) as corpus:
            serial_seconds, serial_acc = _timed(
                lambda c=corpus: accumulate_ranges(c.buffer(), c.spans)
            )
            reference = verify.canonical(serial_acc.result())
            runs = {}
            for label, processes in (("split-1p", 1), ("split-4p", 4)):
                with open_corpus(path) as corpus_run:
                    seconds, run = _timed(
                        lambda c=corpus_run, p=processes: infer_subtree_text(
                            c, processes=p, min_split_bytes=0
                        )
                    )
                # Identity gate: the reassembled type is the serial node.
                assert verify.canonical(run.result) is reference, name
                assert run.partitions >= 1
                runs[label] = seconds
        os.unlink(path)
        record = {
            "corpus": name,
            "megabytes": round(size_mb, 1),
            "mb_per_sec_serial": round(size_mb / serial_seconds, 1),
            "mb_per_sec_split_1p": round(size_mb / runs["split-1p"], 1),
            "mb_per_sec_split_4p": round(size_mb / runs["split-4p"], 1),
            "speedup_4p_vs_serial": round(serial_seconds / runs["split-4p"], 2),
        }
        records.append(record)
        rows.append(
            [
                name,
                f"{size_mb:.1f}",
                record["mb_per_sec_serial"],
                record["mb_per_sec_split_1p"],
                record["mb_per_sec_split_4p"],
                f'{record["speedup_4p_vs_serial"]:5.2f}x',
            ]
        )
    if ASSERT_TIMING:
        assert max(r["speedup_4p_vs_serial"] for r in records) >= 2.0


def _bench_ndjson_regression(rows, records, tmp_dir):
    """A normal NDJSON corpus through the subtree entry point: every
    line is under the split threshold, so the run must degenerate to the
    plain serial fold (zero split documents) at matching throughput."""
    verify = global_table()
    n = 200_000 if FULL else 30_000
    path = os.path.join(tmp_dir, "ndjson.ndjson")
    rng = random.Random(19)
    with open(path, "w", encoding="utf-8") as handle:
        for i in range(n):
            handle.write(dumps({"id": i, "v": rng.random(), "k": ["x"] * (i % 3)}))
            handle.write("\n")
    with open_corpus(path) as corpus:
        serial_seconds, serial_acc = _timed(
            lambda c=corpus: accumulate_ranges(c.buffer(), c.spans)
        )
        reference = verify.canonical(serial_acc.result())
    with open_corpus(path) as corpus:
        subtree_seconds, run = _timed(
            lambda c=corpus: infer_subtree_text(c, processes=4)
        )
    os.unlink(path)
    assert verify.canonical(run.result) is reference
    # Default threshold: no line splits, no pool spins up.
    assert run.partitions == 1 and run.processes == 1
    record = {
        "documents": n,
        "docs_per_sec_serial": round(n / serial_seconds),
        "docs_per_sec_subtree_entry": round(n / subtree_seconds),
        "split_documents": 0,
        "overhead_vs_serial": round(subtree_seconds / serial_seconds, 3),
    }
    records.append(record)
    rows.append(
        [
            n,
            record["docs_per_sec_serial"],
            record["docs_per_sec_subtree_entry"],
            0,
            record["overhead_vs_serial"],
        ]
    )
    if ASSERT_TIMING:
        assert record["overhead_vs_serial"] <= 1.15


def _bench_scheduler(rows, records, tmp_dir):
    """The shape probe: a huge single-line corpus plans the subtree
    mode; the same bytes as many small lines do not."""
    pinned = {
        "REPRO_WORKER_STARTUP_SECONDS": "0.001",
        "REPRO_SHIP_BYTES_PER_SECOND": "150e6",
        "REPRO_SCAN_BYTES_PER_SECOND": "80e6",
        "REPRO_SPLIT_BYTES_PER_SECOND": "2e9",
        "REPRO_CACHE_HIT_SPEEDUP": "4.0",
    }
    previous = {k: os.environ.get(k) for k in pinned}
    os.environ.update(pinned)
    original_auto_jobs = distributed_module.auto_jobs
    distributed_module.auto_jobs = lambda: 4
    try:
        huge = os.path.join(tmp_dir, "huge.ndjson")
        _write_single_line(huge, _record_rows(60_000))
        with open_corpus(huge) as corpus:
            plan_huge = plan_schedule(corpus)
        lines = os.path.join(tmp_dir, "lines.ndjson")
        with open(lines, "w", encoding="utf-8") as handle:
            for row in _record_rows(20_000):
                handle.write(dumps(row))
                handle.write("\n")
        with open_corpus(lines) as corpus:
            plan_lines = plan_schedule(corpus)
        os.unlink(huge)
        os.unlink(lines)
    finally:
        distributed_module.auto_jobs = original_auto_jobs
        for key, value in previous.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    assert plan_huge.mode == "subtree"
    assert plan_lines.mode in ("serial", "parallel")
    for shape, plan in (("one huge line", plan_huge), ("many small lines", plan_lines)):
        records.append(
            {
                "corpus_shape": shape,
                "mode": plan.mode,
                "jobs": plan.jobs,
                "reason": plan.reason,
            }
        )
        rows.append([shape, plan.mode, plan.jobs])


def test_e19_subtree_parallel(tmp_path):
    subtree_rows: list[list] = []
    subtree_records: list[dict] = []
    _bench_subtree(subtree_rows, subtree_records, str(tmp_path))

    ndjson_rows: list[list] = []
    ndjson_records: list[dict] = []
    _bench_ndjson_regression(ndjson_rows, ndjson_records, str(tmp_path))

    scheduler_rows: list[list] = []
    scheduler_records: list[dict] = []
    _bench_scheduler(scheduler_rows, scheduler_records, str(tmp_path))

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_subtree.json").write_text(
        json.dumps(
            {
                "experiment": "e19-subtree-parallel",
                "subtree_rows": subtree_records,
                "ndjson_rows": ndjson_records,
                "scheduler_rows": scheduler_records,
            },
            indent=2,
        )
        + "\n"
    )
    emit(
        "E19-subtree-parallel",
        table(
            ["corpus", "MB", "serial MB/s", "split-1p MB/s", "split-4p MB/s", "speedup"],
            subtree_rows,
        )
        + "\n\n"
        + table(
            ["docs", "serial docs/s", "subtree-entry docs/s", "split docs", "overhead"],
            ndjson_rows,
        )
        + "\n\n"
        + table(["corpus shape", "plan mode", "jobs"], scheduler_rows),
    )
