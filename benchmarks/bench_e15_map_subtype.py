"""E15 — fused map phase & memoized subtyping: seed vs PR 2 engines.

Artifact reconstructed: the map-side cost of parametric inference (every
document typed exactly, per Baazizi et al.) and the comparison algebra
that downstream tooling runs over inferred schemas.  Two measurements:

- **map**: seed ``type_of`` (raw trees) and the seed composition
  ``intern(type_of(d))`` vs the fused :class:`repro.types.build.TypeEncoder`
  (canonical interned terms straight from the value, probe-first,
  recursion-free, shape-cached).  Correctness is asserted by interned
  identity against the composition on a verification sample.

- **subtype**: the seed's unmemoized recursive ``_sub`` vs the memoized
  iterative worklist checker, on (a) exact document types against the
  wide LABEL-merged collection type and (b) repeated checks over a deep
  synthetic pair — the memo turns repeat checks into dictionary probes.

Emits ``BENCH_map.json`` under ``benchmarks/results/``.  Timing ratios
are asserted only under ``REPRO_BENCH_ASSERT=1`` (wall-clock on shared CI
runners is flaky); the agreement/identity asserts are the correctness
gate and always run.  Acceptance: fused map ≥ 2x seed ``type_of`` at 50k
docs (measured ~4x; the JSON records the trajectory).
"""

from __future__ import annotations

import json
import os
import time

from repro.datasets import tweets
from repro.inference.parametric import infer_type
from repro.types import ArrType, Equivalence, INT, NUM, RecType, intern, is_subtype, type_of
from repro.types.build import TypeEncoder
from repro.types.intern import InternTable
from repro.types.subtype import is_subtype_reference

from helpers import RESULTS_DIR, emit, table

SIZES = [10_000, 50_000]
if os.environ.get("REPRO_BENCH_FULL"):
    SIZES.append(100_000)

ASSERT_TIMING = bool(os.environ.get("REPRO_BENCH_ASSERT"))


def _bench_map(rows, records):
    for n in SIZES:
        docs = tweets(n, seed=15)

        start = time.perf_counter()
        for d in docs:
            type_of(d)
        seconds_seed = time.perf_counter() - start

        composition_table = InternTable()
        start = time.perf_counter()
        for d in docs:
            composition_table.intern(type_of(d))
        seconds_composition = time.perf_counter() - start

        fused_table = InternTable()
        encoder = TypeEncoder(fused_table)
        start = time.perf_counter()
        for d in docs:
            encoder.encode(d)
        seconds_fused = time.perf_counter() - start

        # Correctness gate: fused ≡ intern ∘ type_of by interned identity.
        verify_table = InternTable()
        verify_encoder = TypeEncoder(verify_table)
        for d in docs[:500]:
            assert verify_encoder.encode(d) is verify_table.intern(type_of(d))

        speedup_seed = seconds_seed / seconds_fused
        speedup_composition = seconds_composition / seconds_fused
        if ASSERT_TIMING:
            assert seconds_fused < seconds_composition
        record = {
            "documents": n,
            "docs_per_sec_type_of": round(n / seconds_seed),
            "docs_per_sec_intern_type_of": round(n / seconds_composition),
            "docs_per_sec_fused": round(n / seconds_fused),
            "speedup_vs_type_of": round(speedup_seed, 2),
            "speedup_vs_composition": round(speedup_composition, 2),
            "fused_table_nodes": len(fused_table),
        }
        records.append(record)
        rows.append(
            [
                n,
                record["docs_per_sec_type_of"],
                record["docs_per_sec_intern_type_of"],
                record["docs_per_sec_fused"],
                f"{speedup_seed:5.1f}x",
                f"{speedup_composition:5.1f}x",
            ]
        )
    by_docs = {r["documents"]: r for r in records}
    # Acceptance: >= 2x over the seed type_of on the 50k map (measured ~4x).
    if ASSERT_TIMING:
        assert by_docs[50_000]["speedup_vs_type_of"] >= 2.0


def _deep_type(levels: int, leaf):
    t = leaf
    for i in range(levels):
        t = RecType.of({"a": t, "b": ArrType(t)}) if i % 2 else ArrType(t)
    return t


def _bench_subtype(records):
    docs = tweets(4_000, seed=15)
    wide = infer_type(docs, Equivalence.LABEL)  # union of record variants
    fused_schema = infer_type(docs, Equivalence.KIND)
    samples = [intern(type_of(d)) for d in docs[:400]]
    checks = [(s, wide) for s in samples] + [(wide, fused_schema)] * 5

    start = time.perf_counter()
    expected = [is_subtype_reference(s, t) for s, t in checks]
    seconds_reference = time.perf_counter() - start

    start = time.perf_counter()
    got = [is_subtype(s, t) for s, t in checks]
    seconds_memoized = time.perf_counter() - start
    assert got == expected  # differential gate, always on

    # Deep pair, repeated: canonical inputs make repeats pure memo probes.
    deep_left = intern(_deep_type(24, INT))
    deep_right = intern(_deep_type(24, NUM))
    repeats = 50
    start = time.perf_counter()
    expected_deep = [is_subtype_reference(deep_left, deep_right) for _ in range(repeats)]
    seconds_reference_deep = time.perf_counter() - start
    start = time.perf_counter()
    got_deep = [is_subtype(deep_left, deep_right) for _ in range(repeats)]
    seconds_memoized_deep = time.perf_counter() - start
    assert got_deep == expected_deep and got_deep[0] is True

    if ASSERT_TIMING:
        assert seconds_memoized < seconds_reference
        assert seconds_memoized_deep < seconds_reference_deep
    records.append(
        {
            "workload": "wide-label-union",
            "checks": len(checks),
            "reference_ms": round(seconds_reference * 1000, 1),
            "memoized_ms": round(seconds_memoized * 1000, 1),
            "speedup": round(seconds_reference / seconds_memoized, 2),
        }
    )
    records.append(
        {
            "workload": "deep-pair-x50",
            "checks": repeats,
            "reference_ms": round(seconds_reference_deep * 1000, 1),
            "memoized_ms": round(seconds_memoized_deep * 1000, 1),
            "speedup": round(seconds_reference_deep / seconds_memoized_deep, 2),
        }
    )


def test_e15_map_subtype():
    map_rows: list[list] = []
    map_records: list[dict] = []
    _bench_map(map_rows, map_records)

    subtype_records: list[dict] = []
    _bench_subtype(subtype_records)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_map.json").write_text(
        json.dumps(
            {
                "experiment": "e15-map-subtype",
                "map_rows": map_records,
                "subtype_rows": subtype_records,
            },
            indent=2,
        )
        + "\n"
    )
    subtype_rows = [
        [r["workload"], r["checks"], r["reference_ms"], r["memoized_ms"], f"{r['speedup']:5.1f}x"]
        for r in subtype_records
    ]
    emit(
        "E15-map-subtype",
        table(
            ["docs", "type_of/s", "intern∘type_of/s", "fused/s", "vs seed", "vs comp"],
            map_rows,
        )
        + "\n\n"
        + table(
            ["subtype workload", "checks", "ref ms", "memo ms", "speedup"],
            subtype_rows,
        ),
    )
