"""E6 — Skeleton coverage vs order k (Wang et al., VLDB '15).

Artifact reconstructed: the coverage curve of the skeleton paper — how
many documents (and path occurrences) the top-k frequent structures
explain, on a collection with a few dominant variants and a long tail.

Expected shape: coverage rises steeply for small k (dominant structures)
then flattens along the tail; path coverage ≥ document coverage at every
k; building the skeleton is a single cheap pass.
"""

import pytest

from repro.datasets import github_events, opendata_catalog
from repro.inference import build_skeleton, document_coverage, path_coverage

from helpers import emit, table

DOCS = github_events(400, seed=6) + opendata_catalog(200, seed=6)
KS = [1, 2, 4, 8, 16, 32]


def test_e06_skeleton_build_speed(benchmark):
    skeleton = benchmark(lambda: build_skeleton(DOCS, 8))
    assert skeleton.order == 8


def test_e06_coverage_curve(benchmark):
    rows = []
    prev_doc_cov = 0.0
    for k in KS:
        skeleton = build_skeleton(DOCS, k)
        doc_cov = document_coverage(skeleton, DOCS)
        p_cov = path_coverage(skeleton, DOCS)
        assert p_cov >= doc_cov - 1e-9
        assert doc_cov >= prev_doc_cov - 1e-9  # monotone in k
        prev_doc_cov = doc_cov
        rows.append(
            [k, skeleton.order, f"{doc_cov:6.1%}", f"{p_cov:6.1%}"]
        )
    emit(
        "E6-skeleton-coverage",
        table(["k", "structures kept", "document coverage", "path coverage"], rows),
    )
    benchmark(lambda: document_coverage(build_skeleton(DOCS, 8), DOCS))
