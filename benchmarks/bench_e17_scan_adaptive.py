"""E17 — regex-vectorized structural scan, mmap corpora, adaptive scheduling.

Artifact reconstructed: the map-phase throughput of the text→type
pipeline after replacing PR 3's per-character Python dispatch with the
compiled structural scan (phase-specific master regexes + fused
member/element matches), the corpus *load* cost once NDJSON files are
mmap-indexed instead of read-and-split, and the behaviour of the
adaptive scheduler that routes ``--jobs N`` (fixing E16's 0.94–1.01x
parallel rows: the scheduler falls back to a serial fold whenever its
timed-sample cost model says workers would lose).

Three sections, all recorded in ``BENCH_scan.json``:

- **scan**: docs/sec of ``encode_text`` — the PR 3 character machine
  (reconstructed below, driving the *current* shape caches, so the
  comparison isolates the scan itself) vs. the regex scan — on the
  generator corpora plus a number-heavy and a whitespace-heavy corpus
  (the shapes where per-character dispatch was most expensive);
- **load**: mmap index+decode vs. text-mode read+split for the same
  file;
- **adaptive**: serial fold vs. fixed ``--jobs`` pools vs. the adaptive
  scheduler, with the plan's decision and reason recorded per row.

Timing ratios are asserted only under ``REPRO_BENCH_ASSERT=1`` (wall
clock on shared CI runners is flaky); the identity gates — every path
lands on the interned-identical type — always run.
"""

from __future__ import annotations

import json
import os
import random
import time
from typing import Optional

from repro.datasets import (
    github_events,
    ndjson_lines,
    nyt_articles,
    open_corpus,
    read_ndjson_lines,
    tweets,
    write_ndjson,
)
from repro.inference.distributed import infer_adaptive_text, infer_distributed_text
from repro.inference.engine import TypeAccumulator
from repro.jsonvalue.lexer import _Scanner
from repro.jsonvalue.parser import JsonParseError
from repro.jsonvalue.serializer import DumpOptions, dumps
from repro.types import Type
from repro.types.build import EventTypeEncoder
from repro.types.intern import InternTable, global_table

from helpers import RESULTS_DIR, emit, table

SIZES = [10_000, 50_000]
if os.environ.get("REPRO_BENCH_FULL"):
    SIZES.append(100_000)

ASSERT_TIMING = bool(os.environ.get("REPRO_BENCH_ASSERT"))

_WS = " \t\n\r"
_DIGITS = "0123456789"
_NUMBER_START = "-0123456789"
# The PR 3 string probe: one regex search over the candidate span
# decides whether the literal needs the lexer's full decode.
_STRING_SPECIAL = __import__("re").compile("[\x00-\x1f\\\\]").search


# --------------------------------------------------------------------------
# The PR 3 map phase, reconstructed as the baseline: the per-character
# dispatch machine of the old ``encode_text`` (string fast path via
# ``str.find``, digit-at-a-time number walk, per-character whitespace
# skip), driving the *current* encoder's shape caches so the comparison
# isolates the scan.  Valid-input paths only — the bench corpora are
# well-formed; malformed text is the fuzz suite's business.
# --------------------------------------------------------------------------


def _pr3_encode_text(enc: EventTypeEncoder, text: str) -> Type:
    int_atom = enc._int
    flt_atom = enc._flt
    str_atom = enc._str
    bool_atom = enc._bool
    null_atom = enc._null
    find_quote = text.find
    length = len(text)
    pos = 0
    line = 1
    line_start = 0
    scanner: Optional[_Scanner] = None
    stack: list[list] = []
    phase = 0  # 0 value, 1 key, 2 after, 3 key-or-close, 4 value-or-close
    result: Optional[Type] = None
    while True:
        # Inter-token whitespace (tracks line numbers for errors, as the
        # PR 3 machine did on every character).
        while pos < length:
            ch = text[pos]
            if ch == " " or ch == "\t" or ch == "\r":
                pos += 1
            elif ch == "\n":
                pos += 1
                line += 1
                line_start = pos
            else:
                break
        if pos >= length:
            if phase == 2 and not stack:
                assert result is not None
                return result
            raise JsonParseError("unexpected end of input", None)  # pragma: no cover
        if phase == 4:
            if ch == "]":
                pos += 1
                stack.pop()
                completed = enc._empty_arr
                if stack:
                    frame = stack[-1]
                    frame[1].append(id(completed))
                    frame[2].append(completed)
                else:
                    result = completed
                phase = 2
                continue
            phase = 0
        elif phase == 3:
            if ch == "}":
                pos += 1
                stack.pop()
                completed = enc._empty_rec
                if stack:
                    frame = stack[-1]
                    frame[1].append(id(completed))
                    frame[2].append(completed)
                else:
                    result = completed
                phase = 2
                continue
            phase = 1

        if phase == 0:
            if ch == '"':
                end = find_quote('"', pos + 1)
                if end != -1 and _STRING_SPECIAL(text, pos + 1, end) is None:
                    pos = end + 1
                else:
                    if scanner is None:
                        scanner = _Scanner(text)
                    scanner.pos = pos
                    scanner.line = line
                    scanner.line_start = line_start
                    scanner.scan_string()
                    pos = scanner.pos
                completed = str_atom
            elif ch in _NUMBER_START:
                npos = pos
                if ch == "-":
                    npos += 1
                if text[npos] == "0":
                    npos += 1
                else:
                    while npos < length and text[npos] in _DIGITS:
                        npos += 1
                is_float = False
                if npos < length and text[npos] == ".":
                    is_float = True
                    npos += 1
                    while npos < length and text[npos] in _DIGITS:
                        npos += 1
                if npos < length and text[npos] in "eE":
                    is_float = True
                    npos += 1
                    if npos < length and text[npos] in "+-":
                        npos += 1
                    while npos < length and text[npos] in _DIGITS:
                        npos += 1
                pos = npos
                completed = flt_atom if is_float else int_atom
            elif ch == "t":
                pos += 4
                completed = bool_atom
            elif ch == "f":
                pos += 5
                completed = bool_atom
            elif ch == "n":
                pos += 4
                completed = null_atom
            elif ch == "{":
                pos += 1
                stack.append([True, [], []])
                phase = 3
                continue
            else:  # "["
                pos += 1
                stack.append([False, [], []])
                phase = 4
                continue
            if stack:
                frame = stack[-1]
                frame[1].append(id(completed))
                frame[2].append(completed)
            else:
                result = completed
            phase = 2
        elif phase == 1:
            end = find_quote('"', pos + 1)
            if end != -1 and _STRING_SPECIAL(text, pos + 1, end) is None:
                name = text[pos + 1 : end]
                pos = end + 1
            else:
                if scanner is None:
                    scanner = _Scanner(text)
                scanner.pos = pos
                scanner.line = line
                scanner.line_start = line_start
                name = scanner.scan_string().value
                pos = scanner.pos
            stack[-1][1].append(name)
            while pos < length:
                ch = text[pos]
                if ch == " " or ch == "\t" or ch == "\r":
                    pos += 1
                elif ch == "\n":
                    pos += 1
                    line += 1
                    line_start = pos
                else:
                    break
            pos += 1  # ":"
            phase = 0
        else:  # phase == 2
            frame = stack[-1]
            if ch == ",":
                pos += 1
                phase = 1 if frame[0] else 0
            elif ch == "}":
                pos += 1
                stack.pop()
                completed = enc._close_record(frame[1], frame[2])
                if stack:
                    parent = stack[-1]
                    parent[1].append(id(completed))
                    parent[2].append(completed)
                else:
                    result = completed
            else:  # "]"
                pos += 1
                stack.pop()
                completed = enc._close_array(frame[1], frame[2])
                if stack:
                    parent = stack[-1]
                    parent[1].append(id(completed))
                    parent[2].append(completed)
                else:
                    result = completed


# --------------------------------------------------------------------------


def _numeric_lines(n: int) -> list[str]:
    rng = random.Random(17)
    return [
        dumps(
            {
                "series": [rng.randint(0, 10**12) for _ in range(40)],
                "metrics": {
                    "mean": rng.random() * 100,
                    "p99": rng.random() * 1000,
                    "count": rng.randint(0, 10**6),
                },
            }
        )
        for _ in range(n)
    ]


def _pretty_lines(n: int) -> list[str]:
    # Indented serialization with the newlines flattened to spaces: the
    # whitespace density of pretty-printed JSON, one document per line.
    return [
        dumps(doc, DumpOptions(indent=2)).replace("\n", " ")
        for doc in tweets(n, seed=17)
    ]


def _time_scan(lines, use_pr3: bool) -> float:
    enc = EventTypeEncoder(InternTable())
    start = time.perf_counter()
    if use_pr3:
        for line in lines:
            _pr3_encode_text(enc, line)
    else:
        encode_text = enc.encode_text
        for line in lines:
            encode_text(line)
    return time.perf_counter() - start


def _bench_scan(rows, records):
    corpora = [("tweets", lambda n: ndjson_lines(tweets(n, seed=17)))]
    corpora.append(("github", lambda n: ndjson_lines(github_events(n, seed=17))))
    corpora.append(("nyt", lambda n: ndjson_lines(nyt_articles(n, seed=17))))
    corpora.append(("numeric", _numeric_lines))
    corpora.append(("pretty", _pretty_lines))
    for name, make in corpora:
        for n in SIZES:
            lines = make(n)
            seconds_pr3 = min(_time_scan(lines, True) for _ in range(2))
            seconds_scan = min(_time_scan(lines, False) for _ in range(2))

            # Identity gate: both scanners produce the same canonical
            # type for the corpus.
            verify = global_table()
            old_enc = EventTypeEncoder(InternTable())
            new_enc = EventTypeEncoder(InternTable())
            acc_old = TypeAccumulator(table=old_enc.table)
            acc_new = TypeAccumulator(table=new_enc.table)
            for line in lines:
                acc_old.add_type(_pr3_encode_text(old_enc, line))
                acc_new.add_type(new_enc.encode_text(line))
            assert verify.canonical(acc_old.result()) is verify.canonical(
                acc_new.result()
            )

            speedup = seconds_pr3 / seconds_scan
            record = {
                "corpus": name,
                "documents": n,
                "docs_per_sec_pr3_chars": round(n / seconds_pr3),
                "docs_per_sec_regex_scan": round(n / seconds_scan),
                "speedup_vs_pr3": round(speedup, 2),
            }
            records.append(record)
            rows.append(
                [
                    name,
                    n,
                    record["docs_per_sec_pr3_chars"],
                    record["docs_per_sec_regex_scan"],
                    f"{speedup:5.2f}x",
                ]
            )
    if ASSERT_TIMING:
        at_50k = [r for r in records if r["documents"] == 50_000]
        assert max(r["speedup_vs_pr3"] for r in at_50k) >= 1.5


def _bench_load(rows, records, tmp_dir):
    n = max(SIZES)
    path = os.path.join(tmp_dir, "corpus.ndjson")
    write_ndjson(path, tweets(n, seed=17))
    size_mb = os.path.getsize(path) / 1e6

    start = time.perf_counter()
    read_lines = read_ndjson_lines(path)
    seconds_read = time.perf_counter() - start

    start = time.perf_counter()
    corpus = open_corpus(path)
    seconds_index = time.perf_counter() - start
    start = time.perf_counter()
    mmap_lines = list(corpus)
    seconds_decode = time.perf_counter() - start
    assert mmap_lines == read_lines  # identity gate
    corpus.close()

    record = {
        "documents": n,
        "file_mb": round(size_mb, 1),
        "read_split_seconds": round(seconds_read, 4),
        "mmap_index_seconds": round(seconds_index, 4),
        "mmap_full_decode_seconds": round(seconds_decode, 4),
        # What the zero-copy feed actually pays in the parent: the
        # index, not the decode.
        "parent_cost_ratio": round(seconds_index / seconds_read, 3),
    }
    records.append(record)
    rows.append(
        [
            n,
            f"{size_mb:6.1f}",
            f"{seconds_read:7.3f}",
            f"{seconds_index:7.3f}",
            f"{seconds_decode:7.3f}",
            f"{record['parent_cost_ratio']:6.3f}",
        ]
    )
    return path


def _bench_adaptive(rows, records, path):
    n = max(SIZES)
    lines = read_ndjson_lines(path)

    def _serial_fold() -> tuple[float, TypeAccumulator]:
        accumulator = TypeAccumulator(table=InternTable())
        add_text = accumulator.add_text
        start = time.perf_counter()
        for line in lines:
            add_text(line)
        return time.perf_counter() - start, accumulator

    seconds_serial, serial_acc = min(
        (_serial_fold() for _ in range(2)), key=lambda pair: pair[0]
    )
    reference = global_table().canonical(serial_acc.result())

    def row(feed, jobs_label, seconds, run=None, plan=None):
        speedup = seconds_serial / seconds
        record = {
            "feed": feed,
            "jobs": jobs_label,
            "documents": n,
            "docs_per_sec": round(n / seconds),
            "speedup_vs_serial": round(speedup, 2),
        }
        if plan is not None:
            record["plan_mode"] = plan.mode
            record["plan_reason"] = plan.reason
        records.append(record)
        rows.append([feed, jobs_label, record["docs_per_sec"], f"{speedup:5.2f}x",
                     plan.mode if plan is not None else "-"])
        if run is not None:
            assert global_table().canonical(run.result) is reference
            assert run.document_count == n

    records.append(
        {
            "feed": "serial",
            "jobs": 1,
            "documents": n,
            "docs_per_sec": round(n / seconds_serial),
            "speedup_vs_serial": 1.0,
        }
    )
    rows.append(["serial", 1, round(n / seconds_serial), " 1.00x", "-"])

    def _timed(fn):
        best_seconds, best_run = None, None
        for _ in range(2):
            start = time.perf_counter()
            outcome = fn()
            elapsed = time.perf_counter() - start
            if best_seconds is None or elapsed < best_seconds:
                best_seconds, best_run = elapsed, outcome
        return best_seconds, best_run

    for jobs, shm in ((2, False), (4, False), (4, True)):
        seconds, run = _timed(
            lambda jobs=jobs, shm=shm: infer_distributed_text(
                lines, partitions=jobs, processes=jobs, shared_memory=shm
            )
        )
        feed = "fixed-shm" if shm else "fixed-pickle"
        row(feed, jobs, seconds, run=run)

    # Adaptive over in-memory lines and over the mmap corpus.
    seconds, run = _timed(lambda: infer_adaptive_text(lines, jobs=4))
    row("adaptive-lines", "≤4", seconds, run=run, plan=run.plan)

    with open_corpus(path) as corpus:
        seconds, run = _timed(
            lambda: infer_adaptive_text(corpus, jobs=None, shared_memory=True)
        )
    row("adaptive-mmap", "auto", seconds, run=run, plan=run.plan)

    if ASSERT_TIMING:
        adaptive = [r for r in records if str(r["feed"]).startswith("adaptive")]
        fixed = [r for r in records if str(r["feed"]).startswith("fixed")]
        # The scheduler's contract: adaptive rows never lose to serial
        # (beyond timing noise), and never lose to the fixed pools it
        # replaced.
        for r in adaptive:
            assert r["speedup_vs_serial"] >= 0.9, r
        if fixed:
            worst_fixed = min(r["speedup_vs_serial"] for r in fixed)
            best_adaptive = max(r["speedup_vs_serial"] for r in adaptive)
            assert best_adaptive >= worst_fixed


def test_e17_scan_adaptive(tmp_path):
    scan_rows: list[list] = []
    scan_records: list[dict] = []
    _bench_scan(scan_rows, scan_records)

    load_rows: list[list] = []
    load_records: list[dict] = []
    corpus_path = _bench_load(load_rows, load_records, str(tmp_path))

    adaptive_rows: list[list] = []
    adaptive_records: list[dict] = []
    _bench_adaptive(adaptive_rows, adaptive_records, corpus_path)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_scan.json").write_text(
        json.dumps(
            {
                "experiment": "e17-scan-adaptive",
                "scan_rows": scan_records,
                "load_rows": load_records,
                "adaptive_rows": adaptive_records,
            },
            indent=2,
        )
        + "\n"
    )
    emit(
        "E17-scan-adaptive",
        table(
            ["corpus", "docs", "pr3-chars/s", "regex-scan/s", "speedup"],
            scan_rows,
        )
        + "\n\n"
        + table(
            ["docs", "MB", "read+split s", "mmap index s", "mmap decode s",
             "parent ratio"],
            load_rows,
        )
        + "\n\n"
        + table(["feed", "jobs", "docs/s", "vs serial", "plan"], adaptive_rows),
    )
