"""E22 — DOM-free translation: the stream engine vs the DOM paths.

Artifact reconstructed: tutorial §5's schema-aware translation, now
driven straight from each document's byte span.  PR 9 compiles the
resolution, Parquet tree and Avro schema into one fused *column
program*; the stream machine walks the raw bytes with the lexer's fused
scan patterns and emits Parquet column entries (rep/def levels) and
Avro row bytes directly — no DOM, no textify pass, no per-document
Python values on clean subtrees.

One section, recorded in ``BENCH_stream_translate.json``: the seed path
(parse to DOMs, per-document ``type_of`` + merge, batch DOM
translation), the PR 8 interned single-pass flow, and the stream engine
on the two E21 corpus shapes — the speculable "flat" telemetry shape
and the "nested" shape (arrays, numeric drift, nullable record) that
defeats the speculative decoder.  E21 recorded the nested shape at only
~1.2x over seed: the DOM decode dominated.  The stream engine removes
the DOM entirely, so nested is asserted ≥2x over seed end-to-end.

Identity gates always run: both engines must produce byte-identical
Avro rows and identical canonical column-store renderings to the seed
reference.  Timing floors are asserted only under
``REPRO_BENCH_ASSERT=1``; ``REPRO_BENCH_FULL=1`` grows the corpus.
"""

from __future__ import annotations

import json
import os
import random
import time

from repro.jsonvalue.parser import parse
from repro.jsonvalue.serializer import dumps
from repro.translation import (
    column_store_json,
    schema_aware_translate,
    translate_report_path,
)
from repro.types import Equivalence, merge_all, type_of

from helpers import RESULTS_DIR, emit, table

FULL = bool(os.environ.get("REPRO_BENCH_FULL"))
ASSERT_TIMING = bool(os.environ.get("REPRO_BENCH_ASSERT"))

DOCS = 500_000 if FULL else 50_000


def _flat_corpus_lines(n: int) -> list[str]:
    """Constant-structure records (telemetry/log shape) — E21's rng and
    shape, so the speedups compare across benchmark files."""
    rng = random.Random(21)
    return [
        dumps(
            {
                "id": i,
                "user": {
                    "name": f"user-{rng.randint(0, 10**6)}",
                    "verified": bool(i % 7),
                },
                "score": rng.random() * 100,
                "geo": {"lat": rng.random() * 90, "lon": rng.random() * 180},
                "level": rng.randint(0, 5),
            }
        )
        for i in range(n)
    ]


def _nested_corpus_lines(n: int) -> list[str]:
    """Variable-structure records: arrays (never speculable), numeric
    drift (int|flt) and a nullable record — the shape E21 could only
    push to ~1.2x because every line still paid a generic DOM parse."""
    rng = random.Random(22)
    lines = []
    for i in range(n):
        doc = {
            "id": i,
            "user": {"name": f"user-{rng.randint(0, 10**6)}", "verified": bool(i % 7)},
            "score": rng.random() * 100 if i % 3 else rng.randint(0, 100),
            "geo": {"lat": rng.random() * 90, "lon": rng.random() * 180}
            if i % 5
            else None,
            "tags": ["a", "b", "c"][: rng.randint(0, 3)],
        }
        lines.append(dumps(doc))
    return lines


def _timed(fn, repeat=2):
    best, best_result = None, None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best, best_result = elapsed, result
    return best, best_result


def _seed_translate(path: str):
    """The seed pipeline: parse the file to DOMs, infer by per-document
    ``type_of`` + merge, then run the batch DOM translation."""
    with open(path, "r", encoding="utf-8") as handle:
        docs = [parse(line) for line in handle if line.strip()]
    inferred = merge_all((type_of(d) for d in docs), Equivalence.KIND)
    return schema_aware_translate(docs, inferred)


def _bench_shape(rows, records, tmp_dir, shape, lines, floor):
    path = os.path.join(tmp_dir, f"corpus-{shape}.ndjson")
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line)
            handle.write("\n")

    seed_seconds, seed_report = _timed(lambda: _seed_translate(path))
    interned_seconds, interned_run = _timed(
        lambda: translate_report_path(path, engine="interned")
    )
    stream_seconds, stream_run = _timed(
        lambda: translate_report_path(path, engine="stream")
    )

    # Identity gates: both engines reproduce the seed reference bytes.
    reference_columns = column_store_json(seed_report.columnar)
    for run in (interned_run, stream_run):
        assert run.translation.avro_rows == seed_report.avro_rows
        assert (
            column_store_json(run.translation.columnar) == reference_columns
        )
        assert run.translation.document_count == len(lines)

    record = {
        "corpus_shape": shape,
        "documents": len(lines),
        "input_megabytes": round(os.path.getsize(path) / 1e6, 1),
        "docs_per_sec_seed_dom": round(len(lines) / seed_seconds),
        "docs_per_sec_interned": round(len(lines) / interned_seconds),
        "docs_per_sec_stream": round(len(lines) / stream_seconds),
        "speedup_interned": round(seed_seconds / interned_seconds, 2),
        "speedup_stream": round(seed_seconds / stream_seconds, 2),
        "avro_bytes": stream_run.translation.avro_bytes,
        "columnar_bytes": stream_run.translation.columnar_bytes,
    }
    records.append(record)
    rows.append(
        [
            shape,
            len(lines),
            f"{record['input_megabytes']}MB",
            record["docs_per_sec_seed_dom"],
            record["docs_per_sec_interned"],
            record["docs_per_sec_stream"],
            f"{record['speedup_stream']:5.2f}x",
        ]
    )
    os.unlink(path)
    if ASSERT_TIMING:
        # The DOM-free machine must clear 2x over the seed on *both*
        # shapes — the nested corpus is the one E21 left at ~1.2x.
        assert record["speedup_stream"] >= floor, shape
        # And it must stay competitive with the engine it supersedes
        # even on the speculable flat shape, where the template decoder
        # is already near-optimal (a 15% band absorbs run noise).
        assert (
            record["speedup_stream"] >= record["speedup_interned"] * 0.85
        ), shape


def test_e22_stream_translate(tmp_path):
    rows: list[list] = []
    records: list[dict] = []
    _bench_shape(rows, records, str(tmp_path), "flat", _flat_corpus_lines(DOCS), 2.0)
    _bench_shape(
        rows, records, str(tmp_path), "nested", _nested_corpus_lines(DOCS), 2.0
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_stream_translate.json").write_text(
        json.dumps(
            {
                "experiment": "e22-stream-translate",
                "pipeline_rows": records,
            },
            indent=2,
        )
        + "\n"
    )
    emit(
        "E22-stream-translate",
        table(
            [
                "corpus",
                "docs",
                "input",
                "seed DOM docs/s",
                "interned docs/s",
                "stream docs/s",
                "stream speedup",
            ],
            rows,
        ),
    )
