"""E12 — Distributed inference scaling (Baazizi et al., VLDB J '19).

Artifact reconstructed: the scaling figures of the distributed parametric
inference — how the merge-tree dataflow behaves as partitions grow, on the
deterministic cost simulator (the cluster substitution DESIGN.md
documents).

Expected shape: reduce rounds grow logarithmically with the partition
count; the critical-path makespan drops sharply from 1 partition to a few,
then flattens (merge-tree overhead catches up); the result is identical to
sequential inference at every scale (the associativity pay-off).
"""

import math

import pytest

from repro.datasets import github_events
from repro.inference import infer_distributed, infer_type
from repro.types import Equivalence

from helpers import emit, table

DOCS = github_events(600, seed=12)
PARTITIONS = [1, 2, 4, 8, 16, 32]


def test_e12_distributed_speed(benchmark):
    run = benchmark(lambda: infer_distributed(DOCS, 8, Equivalence.KIND))
    assert run.partitions == 8


def test_e12_scaling_table(benchmark):
    sequential = infer_type(DOCS, Equivalence.KIND)
    rows = []
    makespans = []
    for p in PARTITIONS:
        run = infer_distributed(DOCS, p, Equivalence.KIND)
        assert run.result == sequential  # bit-identical at every scale
        assert run.reduce_rounds == math.ceil(math.log2(p)) if p > 1 else run.reduce_rounds == 0
        makespans.append(run.makespan_units)
        rows.append(
            [
                p,
                run.reduce_rounds,
                run.makespan_units,
                run.total_work_units,
                run.total_shipped_bytes,
            ]
        )
    assert makespans[2] < makespans[0]  # parallelism pays
    emit(
        "E12-distributed-scaling",
        table(
            [
                "partitions",
                "reduce rounds",
                "makespan units",
                "total work units",
                "shipped bytes",
            ],
            rows,
        ),
    )
    benchmark(lambda: infer_distributed(DOCS, 16, Equivalence.KIND))
