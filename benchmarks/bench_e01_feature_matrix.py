"""E1 — Schema-language / type-system feature matrix (tutorial Parts 2+3).

Artifact reconstructed: the capability comparison table the tutorial walks
through on slides.  Every cell is *probed* against the five implementations
(see ``repro.pl.features``), so the benchmark both times the probe suite
and regenerates the table.

Expected shape: JSON Schema and Joi dominate; JSound is restrictive by
design; TypeScript expresses unions/xor/value-dependence structurally but
cannot close records or split int/float; Swift is the mirror image.
"""

from repro.pl import FEATURES, SYSTEMS, feature_matrix, render_matrix

from helpers import emit


def test_e01_feature_matrix(benchmark):
    matrix = benchmark(feature_matrix)

    assert set(matrix.keys()) == set(FEATURES)
    # Headline cells from the tutorial's prose.
    assert matrix["union types"]["Joi"] and not matrix["union types"]["Swift"]
    assert matrix["negation types"]["JSON Schema"]
    assert matrix["co-occurrence constraints"]["Joi"]
    assert not matrix["int/float distinction"]["TypeScript"]

    yes = {s: sum(1 for f in FEATURES if matrix[f][s]) for s in SYSTEMS}
    summary = "feature counts: " + ", ".join(f"{s}={n}" for s, n in yes.items())
    emit("E1-feature-matrix", render_matrix(matrix) + "\n\n" + summary)
