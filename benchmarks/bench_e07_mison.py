"""E7 — Mison speedup vs projection width (Li et al., VLDB '17).

Artifact reconstructed: the Mison speedup figure — projected parsing
versus full parsing as the analytics task touches more fields.

Expected shape: highest speedup for the narrowest projection (most data
pruned at the bitmap level), monotonically shrinking as the projection
widens; results always identical to parse-then-project.
"""

import pytest

from repro.datasets import ndjson_lines, tweets
from repro.jsonvalue.parser import parse
from repro.parsing import MisonParser, apply_projection

from helpers import emit, table, wall_ms

LINES = ndjson_lines(tweets(500, seed=7, delete_fraction=0.0))

PROJECTIONS = [
    ["id"],
    ["id", "lang"],
    ["id", "lang", "user.screen_name"],
    ["id", "lang", "user.screen_name", "retweet_count", "favorite_count"],
    [
        "id",
        "lang",
        "user.screen_name",
        "retweet_count",
        "favorite_count",
        "entities.hashtags[*].text",
        "user.followers_count",
    ],
]


def test_e07_projected_parse_speed(benchmark):
    parser = MisonParser(["user.screen_name", "retweet_count"])

    def run():
        return [parser.parse_projected(line) for line in LINES]

    results = benchmark(run)
    assert len(results) == len(LINES)


def test_e07_speedup_curve(benchmark):
    t_full = wall_ms(lambda: [parse(line) for line in LINES], repeat=2)
    rows = []
    speedups = []
    for projection in PROJECTIONS:
        parser = MisonParser(projection)
        t_proj = wall_ms(
            lambda p=parser: [p.parse_projected(line) for line in LINES], repeat=2
        )
        # Correctness: identical to parse-then-project.
        check_parser = MisonParser(projection)
        for line in LINES[:25]:
            assert check_parser.parse_projected(line) == apply_projection(
                parse(line), projection
            )
        speedup = t_full / t_proj
        speedups.append(speedup)
        rows.append(
            [
                len(projection),
                f"{t_full:7.1f}",
                f"{t_proj:7.1f}",
                f"{speedup:5.2f}x",
                f"{check_parser.stats.hit_rate:5.1%}",
            ]
        )
    # The headline shape: narrow projections win the most.
    assert speedups[0] >= speedups[-1]
    emit(
        "E7-mison-speedup",
        table(
            ["projected fields", "full ms", "projected ms", "speedup", "spec hit-rate"],
            rows,
        ),
    )
    parser = MisonParser(["id"])
    benchmark(lambda: [parser.parse_projected(line) for line in LINES[:100]])
