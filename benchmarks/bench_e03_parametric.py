"""E3 — Parametric inference: precision/succinctness vs equivalence.

Artifact reconstructed: the schema-size tables of Baazizi et al.
(EDBT '17, Table 2-style): for collections of growing structural
heterogeneity, the size of the KIND-inferred vs LABEL-inferred type, plus
inference time.

Expected shape: KIND sizes grow slowly (everything fuses); LABEL sizes
grow with the number of variants (union members preserved); KIND ⊆ LABEL
in size, and LABEL rejects cross-variant chimeras KIND accepts.
"""

import pytest

from repro.datasets import heterogeneous_collection
from repro.inference import infer, infer_type, precision_against
from repro.types import Equivalence, matches

from helpers import emit, table, wall_ms

SIZES = [1, 2, 4, 8]


@pytest.mark.parametrize("equivalence", [Equivalence.KIND, Equivalence.LABEL])
def test_e03_inference_speed(benchmark, equivalence):
    docs = heterogeneous_collection(500, variants=4, seed=3)
    result = benchmark(lambda: infer_type(docs, equivalence))
    for doc in docs[:50]:
        assert matches(doc, result)


def test_e03_size_table(benchmark):
    rows = []
    for variants in SIZES:
        docs = heterogeneous_collection(400, variants=variants, seed=variants)
        report_k = infer(docs, Equivalence.KIND)
        report_l = infer(docs, Equivalence.LABEL)
        ms_k = wall_ms(lambda d=docs: infer_type(d, Equivalence.KIND), repeat=1)
        # Chimera witnesses: swap fields across variants.
        chimeras = [
            {**docs[i], **docs[(i + 7) % len(docs)]} for i in range(0, 40, 2)
        ]
        rows.append(
            [
                variants,
                report_k.schema_size,
                report_l.schema_size,
                f"{report_l.schema_size / report_k.schema_size:4.2f}x",
                f"{precision_against(report_k.inferred, chimeras):5.1%}",
                f"{precision_against(report_l.inferred, chimeras):5.1%}",
                f"{ms_k:7.1f}",
            ]
        )
        assert report_k.schema_size <= report_l.schema_size
    emit(
        "E3-parametric-precision",
        table(
            [
                "variants",
                "size K",
                "size L",
                "L/K",
                "chimera acc. K",
                "chimera acc. L",
                "K infer ms",
            ],
            rows,
        ),
    )
    docs = heterogeneous_collection(200, variants=4, seed=9)
    benchmark(lambda: infer_type(docs, Equivalence.LABEL))
